/**
 * @file
 * Unit tests for the cmt_analyze engine: the shared tokenizer, the
 * per-file symbol index (including its JSON cache round trip), each
 * whole-program rule pass against inline known-good/known-bad
 * sources, the suppression-directive contract, and the committed
 * fixture trees under tests/tools/fixtures/analyze/. The binary's
 * exit-code contract is covered by the analyze_* ctest entries in
 * tests/CMakeLists.txt.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/analysis.h"
#include "analyze/index.h"
#include "analyze/passes.h"
#include "analyze/tokenizer.h"

namespace cmt::analyze
{
namespace
{

// --- tokenizer --------------------------------------------------------

std::vector<Token>
lexCode(const std::string &src)
{
    std::vector<Token> out;
    for (const Token &t : tokenize(src))
        if (t.kind != TokKind::kComment)
            out.push_back(t);
    return out;
}

TEST(Tokenizer, DigitSeparatorsStayInsideTheNumberToken)
{
    const auto toks = lexCode("n = 1'000'000 + f();");
    ASSERT_GE(toks.size(), 4u);
    EXPECT_EQ(toks[2].kind, TokKind::kNumber);
    EXPECT_EQ(toks[2].text, "1'000'000");
    // The token after the separator-bearing number must be the
    // operator, not the tail of a runaway char literal.
    EXPECT_EQ(toks[3].text, "+");
}

TEST(Tokenizer, HexSeparatorsAndFloatExponents)
{
    EXPECT_EQ(lexCode("0xFF'FF'00'00")[0].text, "0xFF'FF'00'00");
    EXPECT_EQ(lexCode("1.5e+3")[0].text, "1.5e+3");
    EXPECT_EQ(lexCode("0x1p-2")[0].text, "0x1p-2");
}

TEST(Tokenizer, PrefixedCharLiteralsLexAsOneToken)
{
    for (const char *src : {"L'x'", "u8'a'", "u'q'", "U'z'"}) {
        const auto toks = lexCode(src);
        ASSERT_EQ(toks.size(), 1u) << src;
        EXPECT_EQ(toks[0].kind, TokKind::kCharLiteral) << src;
        EXPECT_EQ(toks[0].text, src);
    }
}

TEST(Tokenizer, RawStringsRespectTheirDelimiter)
{
    const auto toks =
        lexCode("auto s = R\"x(a \")\" b)x\"; int k;");
    const auto it = std::find_if(
        toks.begin(), toks.end(), [](const Token &t) {
            return t.kind == TokKind::kString;
        });
    ASSERT_NE(it, toks.end());
    EXPECT_EQ(it->text, "R\"x(a \")\" b)x\"");
    // Lexing resumes cleanly after the raw string.
    EXPECT_NE(std::find_if(toks.begin(), toks.end(),
                           [](const Token &t) {
                               return t.text == "k";
                           }),
              toks.end());
}

TEST(Tokenizer, IncludeTargetsLexAsHeaderNames)
{
    const auto toks = tokenize("#include <vector>\n"
                               "#include \"tree/layout.h\"\n");
    std::vector<std::string> headers;
    for (const Token &t : toks)
        if (t.kind == TokKind::kHeaderName) {
            EXPECT_TRUE(t.inDirective);
            headers.push_back(t.text);
        }
    EXPECT_EQ(headers,
              (std::vector<std::string>{"<vector>",
                                        "\"tree/layout.h\""}));
}

TEST(Tokenizer, LineSplicesContinueTheDirective)
{
    const auto toks = tokenize("#define X a \\\n    b\nint c;\n");
    bool sawB = false;
    for (const Token &t : toks)
        if (t.text == "b") {
            sawB = true;
            EXPECT_TRUE(t.inDirective);
        }
    EXPECT_TRUE(sawB);
    for (const Token &t : toks)
        if (t.text == "c") {
            EXPECT_FALSE(t.inDirective);
        }
}

TEST(Tokenizer, ScrubBlanksLiteralsButKeepsStructure)
{
    const std::string out = scrubSource(
        "int a; // secret()\n"
        "const char *s = \"secret()\";\n"
        "char c = 'x';\n");
    EXPECT_EQ(out.find("secret"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    // Quote delimiters survive; contents are spaces.
    EXPECT_NE(out.find('"'), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Tokenizer, ScrubKeepCommentsPreservesDirectives)
{
    const std::string out = scrubSource(
        "int a; // cmt-analyze: allow(lock-order)\n"
        "const char *s = \"cmt-analyze: allow(lock-order)\";\n",
        /*keepComments=*/true);
    // The comment survives; the string-literal copy does not.
    EXPECT_EQ(out.find("allow", out.find('"')), std::string::npos);
    EXPECT_NE(out.find("// cmt-analyze: allow(lock-order)"),
              std::string::npos);
}

TEST(Tokenizer, KeywordsClassify)
{
    EXPECT_TRUE(isKeyword("while"));
    EXPECT_TRUE(isKeyword("sizeof"));
    EXPECT_FALSE(isKeyword("verify"));
}

// --- symbol index -----------------------------------------------------

const FunctionInfo *
findFn(const FileSummary &s, const std::string &name)
{
    for (const FunctionInfo &f : s.functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

TEST(Index, ExtractsFunctionShape)
{
    const FileSummary s = summarizeSource(
        "src/tree/x.cc",
        "std::vector<std::uint8_t>\n"
        "Widget::fetch(std::uint64_t chunk)\n"
        "{\n"
        "    return ram_.readChunk(chunk);\n"
        "}\n");
    const FunctionInfo *fn = findFn(s, "fetch");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->className, "Widget");
    EXPECT_FALSE(fn->returnsVoid);
    EXPECT_EQ(fn->nameLine, 2);
    EXPECT_EQ(fn->bodyOpenLine, 3);
    EXPECT_EQ(fn->endLine, 5);
    ASSERT_EQ(fn->events.size(), 2u);
    EXPECT_EQ(fn->events[0].kind, Event::Kind::kRead);
    EXPECT_EQ(fn->events[1].kind, Event::Kind::kReturn);
}

TEST(Index, DetectsMutableSpanOutParams)
{
    const FileSummary s = summarizeSource(
        "src/tree/x.cc",
        "void fill(std::span<std::uint8_t> out) {}\n"
        "void peek(std::span<const std::uint8_t> in) {}\n");
    ASSERT_NE(findFn(s, "fill"), nullptr);
    EXPECT_TRUE(findFn(s, "fill")->hasMutableSpanParam);
    ASSERT_NE(findFn(s, "peek"), nullptr);
    EXPECT_FALSE(findFn(s, "peek")->hasMutableSpanParam);
}

TEST(Index, BranchesLocksAndDiscardsBecomeEvents)
{
    const FileSummary s = summarizeSource(
        "src/tree/x.cc",
        "void f()\n"
        "{\n"
        "    MutexLock guard(mu_);\n"
        "    if (cond()) {\n"
        "        verify(a, b);\n"
        "    } else {\n"
        "        save(a);\n"
        "    }\n"
        "}\n");
    const FunctionInfo *fn = findFn(s, "f");
    ASSERT_NE(fn, nullptr);
    std::vector<Event::Kind> kinds;
    for (const Event &e : fn->events)
        kinds.push_back(e.kind);
    EXPECT_EQ(kinds,
              (std::vector<Event::Kind>{
                  Event::Kind::kLock, Event::Kind::kCall,
                  Event::Kind::kIfBegin, Event::Kind::kVerify,
                  Event::Kind::kElseBegin, Event::Kind::kCall,
                  Event::Kind::kIfEnd, Event::Kind::kUnlock}));
    // The discarded save() call is marked.
    for (const Event &e : fn->events)
        if (e.name == "save") {
            EXPECT_TRUE(e.discarded);
        }
}

TEST(Index, DeclaredSymbolsCoverTypesEnumsAliasesAndMacros)
{
    const FileSummary s = summarizeSource(
        "src/x.h",
        "#define WIDTH 8\n"
        "struct Node { int v; };\n"
        "enum class Mode { kA, kB };\n"
        "enum Flags { kRaw = 1 };\n"
        "using Row = std::vector<int>;\n"
        "typedef int Cell;\n");
    for (const char *sym :
         {"WIDTH", "Node", "Mode", "Flags", "kRaw", "Row", "Cell"})
        EXPECT_TRUE(s.declaredSymbols.contains(sym)) << sym;
    EXPECT_TRUE(s.definedTypes.contains("Node"));
    EXPECT_TRUE(s.definedTypes.contains("Mode"));
}

TEST(Index, AllowDirectivesCoverTheirLineAndTheNext)
{
    const FileSummary s = summarizeSource(
        "src/x.cc",
        "int a; // cmt-analyze: allow(lock-order)\n"
        "// cmt-analyze: allow(trust-boundary)\n"
        "int b;\n"
        "int c;\n");
    EXPECT_TRUE(allowedAt(s, "lock-order", 1));
    EXPECT_FALSE(allowedAt(s, "lock-order", 2));
    // A directive-only line covers itself and the next line.
    EXPECT_TRUE(allowedAt(s, "trust-boundary", 2));
    EXPECT_TRUE(allowedAt(s, "trust-boundary", 3));
    EXPECT_FALSE(allowedAt(s, "trust-boundary", 4));
}

TEST(Index, DirectiveInsideStringLiteralIsData)
{
    const FileSummary s = summarizeSource(
        "src/x.cc",
        "const char *s = \"// cmt-analyze: allow(lock-order)\";\n");
    EXPECT_FALSE(allowedAt(s, "lock-order", 1));
}

TEST(Index, ContentHashDistinguishesBytes)
{
    EXPECT_EQ(contentHash("abc"), contentHash("abc"));
    EXPECT_NE(contentHash("abc"), contentHash("abd"));
}

// --- index cache round trip -------------------------------------------

TEST(IndexCache, JsonRoundTripPreservesTheSummary)
{
    const std::string src =
        "#include \"tree/layout.h\"\n"
        "// cmt-analyze: allow(include-hygiene)\n"
        "struct Probe { int v; };\n"
        "bool verifyProbe(std::uint64_t c)\n"
        "{\n"
        "    auto img = ram_.readChunk(c);\n"
        "    return verify(c, img);\n"
        "}\n";
    const FileSummary a = summarizeSource("src/tree/p.cc", src);
    FileSummary b;
    ASSERT_TRUE(summaryFromJson(summaryToJson(a), &b));
    EXPECT_EQ(summaryToJson(a), summaryToJson(b));
    EXPECT_EQ(b.path, a.path);
    EXPECT_EQ(b.contentHash, a.contentHash);
    EXPECT_EQ(b.quotedIncludes, a.quotedIncludes);
    EXPECT_EQ(b.declaredSymbols, a.declaredSymbols);
    ASSERT_EQ(b.functions.size(), a.functions.size());
    for (std::size_t i = 0; i < a.functions.size(); ++i) {
        EXPECT_EQ(b.functions[i].name, a.functions[i].name);
        EXPECT_EQ(b.functions[i].events.size(),
                  a.functions[i].events.size());
    }
}

TEST(IndexCache, MalformedOrAlienJsonIsRejected)
{
    FileSummary out;
    EXPECT_FALSE(summaryFromJson("not json at all", &out));
    EXPECT_FALSE(summaryFromJson("{}", &out));
    // A wrong schema version must miss so old caches die cleanly.
    const FileSummary a = summarizeSource("src/x.cc", "int a;\n");
    std::string json = summaryToJson(a);
    const std::string key =
        "\"schema\":" + std::to_string(kIndexSchemaVersion);
    const auto at = json.find(key);
    ASSERT_NE(at, std::string::npos);
    json.replace(at, key.size(), "\"schema\":999");
    EXPECT_FALSE(summaryFromJson(json, &out));
}

// --- trust-boundary ---------------------------------------------------

std::vector<Diagnostic>
runOn(const std::vector<std::pair<std::string, std::string>> &srcs,
      const std::string &rule)
{
    std::vector<FileSummary> files;
    for (const auto &[path, text] : srcs)
        files.push_back(summarizeSource(path, text));
    return runPasses(files, {rule});
}

TEST(TrustBoundary, GatedVerifyLeavesTheSkipPathTainted)
{
    // The CMT_FAULT_SKIP_VERIFY_SHARD shape: verification sits
    // behind a condition, so one path returns unchecked bytes.
    const auto diags = runOn(
        {{"src/tree/fill.cc",
          "std::vector<std::uint8_t> fill(std::uint64_t c)\n"
          "{\n"
          "    auto img = ram_.readChunk(c);\n"
          "    if (!faultSkipVerifyShard(c)) {\n"
          "        verify(c, img);\n"
          "    }\n"
          "    return img;\n"
          "}\n"}},
        "trust-boundary");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "trust-boundary");
    EXPECT_EQ(diags[0].line, 7);
}

TEST(TrustBoundary, UnconditionalVerifyIsClean)
{
    EXPECT_TRUE(runOn({{"src/tree/fill.cc",
                        "std::vector<std::uint8_t> fill(int c)\n"
                        "{\n"
                        "    auto img = ram_.readChunk(c);\n"
                        "    verify(c, img);\n"
                        "    return img;\n"
                        "}\n"}},
                      "trust-boundary")
                    .empty());
}

TEST(TrustBoundary, VerifyingHelperSanitizesAcrossFiles)
{
    const std::vector<std::pair<std::string, std::string>> srcs = {
        {"src/tree/fill.cc",
         "std::vector<std::uint8_t> fill(int c)\n"
         "{\n"
         "    auto img = ram_.readChunk(c);\n"
         "    checkChunk(c, img);\n"
         "    return img;\n"
         "}\n"},
        {"src/tree/check.cc",
         "void checkChunk(int c, const Image &img)\n"
         "{\n"
         "    if (!auth_.verify(c, img))\n"
         "        throw IntegrityError(c);\n"
         "}\n"}};
    EXPECT_TRUE(runOn(srcs, "trust-boundary").empty());
    // Without the helper's definition, the call sanitizes nothing.
    EXPECT_EQ(runOn({srcs[0]}, "trust-boundary").size(), 1u);
}

TEST(TrustBoundary, BothBranchesMustVerify)
{
    const auto diags = runOn(
        {{"src/verify/x.cc",
          "std::vector<std::uint8_t> f(int c)\n"
          "{\n"
          "    auto img = ram_.readChunk(c);\n"
          "    if (fast) {\n"
          "        verify(c, img);\n"
          "        return img;\n"
          "    }\n"
          "    return img;\n"
          "}\n"}},
        "trust-boundary");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 8);
}

TEST(TrustBoundary, MutableSpanOutParamIsASink)
{
    const auto diags = runOn(
        {{"src/tree/x.cc",
          "void fill(int c, std::span<std::uint8_t> out)\n"
          "{\n"
          "    auto img = ram_.readChunk(c);\n"
          "    copy(img, out);\n"
          "}\n"}},
        "trust-boundary");
    EXPECT_EQ(diags.size(), 1u);
}

TEST(TrustBoundary, OnlyTreeAndVerifyDirsAreInScope)
{
    EXPECT_TRUE(runOn({{"src/sim/x.cc",
                        "std::vector<std::uint8_t> f(int c)\n"
                        "{ return ram_.readChunk(c); }\n"}},
                      "trust-boundary")
                    .empty());
}

TEST(TrustBoundary, FunctionScopedAllowSuppresses)
{
    EXPECT_TRUE(runOn({{"src/tree/x.cc",
                        "// cmt-analyze: allow(trust-boundary)\n"
                        "std::vector<std::uint8_t> raw(int c)\n"
                        "{ return ram_.readChunk(c); }\n"}},
                      "trust-boundary")
                    .empty());
}

// --- lock-order -------------------------------------------------------

TEST(LockOrder, AbbaOrderingIsACycle)
{
    const auto diags = runOn(
        {{"src/sim/x.cc",
          "void a() { MutexLock l1(mu_a); MutexLock l2(mu_b); }\n"
          "void b() { MutexLock l2(mu_b); MutexLock l1(mu_a); }\n"}},
        "lock-order");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "lock-order");
    EXPECT_NE(diags[0].message.find("cycle"), std::string::npos);
}

TEST(LockOrder, ConsistentOrderIsClean)
{
    EXPECT_TRUE(
        runOn({{"src/sim/x.cc",
                "void a() { MutexLock l1(mu_a); MutexLock "
                "l2(mu_b); }\n"
                "void b() { MutexLock l1(mu_a); MutexLock "
                "l2(mu_b); }\n"}},
              "lock-order")
            .empty());
}

TEST(LockOrder, CycleThroughACallEdgeIsFound)
{
    const auto diags = runOn(
        {{"src/sim/x.cc",
          "void outer() { MutexLock l(mu_a); inner(); }\n"
          "void inner() { MutexLock l(mu_b); }\n"
          "void other() { MutexLock l(mu_b); grab(); }\n"
          "void grab() { MutexLock l(mu_a); }\n"}},
        "lock-order");
    ASSERT_EQ(diags.size(), 1u);
}

TEST(LockOrder, AmbiguousReceiverCallsCreateNoPhantomEdges)
{
    // Regression for the MemoCache false positive: doc.find() must
    // not resolve to MemoCache::find just because the names match
    // when another find exists.
    const std::vector<std::pair<std::string, std::string>> srcs = {
        {"src/sim/cache.cc",
         "void MemoCache::load()\n"
         "{\n"
         "    MutexLock lock(mu_);\n"
         "    doc.find(\"rows\");\n"
         "}\n"
         "void MemoCache::find()\n"
         "{\n"
         "    MutexLock lock(mu_);\n"
         "}\n"},
        {"src/support/json.cc", "void Json::find() {}\n"}};
    EXPECT_TRUE(runOn(srcs, "lock-order").empty());
}

TEST(LockOrder, SelfDeadlockThroughImplicitThisIsFound)
{
    // An unqualified call binds within the caller's class, so
    // re-acquiring the same member mutex is caught.
    const auto diags = runOn(
        {{"src/sim/cache.cc",
          "void MemoCache::load()\n"
          "{\n"
          "    MutexLock lock(mu_);\n"
          "    helper();\n"
          "}\n"
          "void MemoCache::helper()\n"
          "{\n"
          "    MutexLock lock(mu_);\n"
          "}\n"}},
        "lock-order");
    ASSERT_EQ(diags.size(), 1u);
}

// --- error-discipline -------------------------------------------------

TEST(ErrorDiscipline, DiscardedBoolVerifyIsFlagged)
{
    const auto diags = runOn(
        {{"src/tree/x.cc",
          "bool verifyChunk(int c) { return c == 0; }\n"
          "void f() { verifyChunk(3); }\n"}},
        "error-discipline");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2);
}

TEST(ErrorDiscipline, ConsumedResultsAreClean)
{
    EXPECT_TRUE(runOn({{"src/tree/x.cc",
                        "bool verifyChunk(int c) { return c == 0; }\n"
                        "void f() { if (!verifyChunk(3)) panic(); }\n"
                        "bool g() { return verifyChunk(4); }\n"}},
                      "error-discipline")
                    .empty());
}

TEST(ErrorDiscipline, BareVerifyWithoutDefinitionStillCounts)
{
    const auto diags =
        runOn({{"src/tree/x.cc",
                "void f(int c, Image &img) { verify(c, img); }\n"}},
              "error-discipline");
    ASSERT_EQ(diags.size(), 1u);
}

TEST(ErrorDiscipline, VoidHelpersAndOtherNamesAreExempt)
{
    EXPECT_TRUE(runOn({{"src/tree/x.cc",
                        "void verifySlow(int c) {}\n"
                        "bool computeBit(int c) { return c & 1; }\n"
                        "void f()\n"
                        "{\n"
                        "    verifySlow(3);\n"
                        "    computeBit(4);\n"
                        "}\n"}},
                      "error-discipline")
                    .empty());
}

TEST(ErrorDiscipline, AllowDirectiveSuppresses)
{
    EXPECT_TRUE(
        runOn({{"src/tree/x.cc",
                "bool saveRoots(int c) { return true; }\n"
                "void f()\n"
                "{\n"
                "    // cmt-analyze: allow(error-discipline)\n"
                "    saveRoots(3);\n"
                "}\n"}},
              "error-discipline")
            .empty());
}

// --- include-hygiene --------------------------------------------------

TEST(IncludeHygiene, UnusedAndTransitiveIncludesAreFlagged)
{
    const std::vector<std::pair<std::string, std::string>> srcs = {
        {"src/a.h", "struct TypeA { int a; };\n"},
        {"src/b.h", "#include \"a.h\"\nstruct TypeB { TypeA x; };\n"},
        {"src/u.h", "struct TypeU { int u; };\n"},
        {"src/main.cc",
         "#include \"b.h\"\n"
         "#include \"u.h\"\n"
         "TypeA f(TypeB b) { return b.x; }\n"}};
    const auto diags = runOn(srcs, "include-hygiene");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_NE(diags[0].message.find("\"u.h\" is unused"),
              std::string::npos);
    EXPECT_NE(diags[1].message.find("'TypeA'"), std::string::npos);
}

TEST(IncludeHygiene, DirectIncludesAndSelfHeaderAreClean)
{
    EXPECT_TRUE(
        runOn({{"src/a.h", "struct TypeA { int a; };\n"},
               {"src/b.h",
                "#include \"a.h\"\nstruct TypeB { TypeA x; };\n"},
               {"src/b.cc",
                "#include \"b.h\"\nint g(TypeB b) { return 0; }\n"}},
              "include-hygiene")
            .empty());
}

TEST(IncludeHygiene, LocalForwardDeclarationSatisfiesUse)
{
    EXPECT_TRUE(runOn({{"src/a.h", "struct TypeA { int a; };\n"},
                       {"src/b.h",
                        "#include \"a.h\"\n"
                        "struct TypeB { TypeA inner; };\n"},
                       {"src/main.cc",
                        "#include \"b.h\"\n"
                        "struct TypeA;\n"
                        "TypeA *f(TypeB *b);\n"}},
                      "include-hygiene")
                    .empty());
}

TEST(IncludeHygiene, AllowDirectiveOnTheIncludeLineSuppresses)
{
    EXPECT_TRUE(
        runOn({{"src/u.h", "struct TypeU { int u; };\n"},
               {"src/main.cc",
                "// re-exported for downstream users\n"
                "// cmt-analyze: allow(include-hygiene)\n"
                "#include \"u.h\"\n"
                "int f();\n"}},
              "include-hygiene")
            .empty());
}

// --- engine + committed fixture trees ---------------------------------

std::string
fixtureDir(const std::string &leaf)
{
    return std::string(CMT_ANALYZE_FIXTURES_DIR) + "/" + leaf;
}

std::size_t
countRule(const std::vector<Diagnostic> &diags,
          const std::string &rule)
{
    return static_cast<std::size_t>(std::count_if(
        diags.begin(), diags.end(), [&](const Diagnostic &d) {
            return d.rule == rule;
        }));
}

TEST(AnalyzeTree, GoodFixtureTreeIsClean)
{
    AnalyzeOptions opt;
    opt.root = fixtureDir("good");
    const AnalyzeReport report = analyzeTree(opt);
    EXPECT_GT(report.filesIndexed, 0u);
    for (const Diagnostic &d : report.diagnostics)
        ADD_FAILURE() << d.file << ":" << d.line << " [" << d.rule
                      << "] " << d.message;
}

TEST(AnalyzeTree, EachBadFixtureFiresExactlyItsRule)
{
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"bad/trust_boundary", "trust-boundary"},
        {"bad/lock_order", "lock-order"},
        {"bad/error_discipline", "error-discipline"},
        {"bad/include_hygiene", "include-hygiene"}};
    for (const auto &[leaf, rule] : cases) {
        AnalyzeOptions opt;
        opt.root = fixtureDir(leaf);
        const AnalyzeReport report = analyzeTree(opt);
        EXPECT_GT(countRule(report.diagnostics, rule), 0u)
            << leaf << " never fired " << rule;
        for (const std::string &other : ruleNames())
            if (other != rule) {
                EXPECT_EQ(countRule(report.diagnostics, other), 0u)
                    << leaf << " leaked rule " << other;
            }
    }
}

TEST(AnalyzeTree, RuleFilterRestrictsThePasses)
{
    AnalyzeOptions opt;
    opt.root = fixtureDir("bad/trust_boundary");
    opt.rules = {"lock-order"};
    EXPECT_TRUE(analyzeTree(opt).diagnostics.empty());
}

TEST(AnalyzeTree, CacheHitsOnSecondRunAndSurvivesCorruption)
{
    namespace fs = std::filesystem;
    const std::string cache =
        testing::TempDir() + "/cmt_analyze_cache_test";
    fs::remove_all(cache);

    AnalyzeOptions opt;
    opt.root = fixtureDir("bad/trust_boundary");
    opt.cacheDir = cache;

    const AnalyzeReport cold = analyzeTree(opt);
    EXPECT_EQ(cold.cacheHits, 0u);
    ASSERT_EQ(countRule(cold.diagnostics, "trust-boundary"), 1u);

    const AnalyzeReport warm = analyzeTree(opt);
    EXPECT_EQ(warm.cacheHits, warm.filesIndexed);
    EXPECT_EQ(warm.filesIndexed, cold.filesIndexed);
    ASSERT_EQ(countRule(warm.diagnostics, "trust-boundary"), 1u);

    // Corrupt entries must be silent misses, not wrong answers.
    for (const fs::directory_entry &e :
         fs::directory_iterator(cache)) {
        std::ofstream out(e.path(), std::ios::trunc);
        out << "{ corrupted";
    }
    const AnalyzeReport rebuilt = analyzeTree(opt);
    EXPECT_EQ(rebuilt.cacheHits, 0u);
    EXPECT_EQ(countRule(rebuilt.diagnostics, "trust-boundary"), 1u);
    fs::remove_all(cache);
}

} // namespace
} // namespace cmt::analyze
