/**
 * @file
 * Benchmark-snapshot diff unit tests: synthetic BENCH documents
 * exercising every verdict path of diffBenchSnapshots() and both
 * exit gates of benchDiffPasses() - clean speedups, slowdown
 * thresholds, geomean targets, config drift, missing/extra rows and
 * incomparable documents.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/benchdiff.h"

namespace cmt
{
namespace
{

Json
makeRun(const std::string &figure, const std::string &label,
        double hostSeconds, int seed = 1)
{
    Json run = Json::object();
    run.set("label", label);
    run.set("ok", true);
    run.set("host_seconds", hostSeconds);
    Json config = Json::object();
    config.set("benchmark", label);
    config.set("seed", seed);
    run.set("config", std::move(config));
    run.set("figure", figure);
    return run;
}

Json
makeSnapshot(std::vector<Json> runs, double scale = 0.02)
{
    Json doc = Json::object();
    doc.set("snapshot", "micro");
    doc.set("repro_scale", scale);
    Json arr = Json::array();
    for (Json &run : runs)
        arr.push(std::move(run));
    doc.set("runs", std::move(arr));
    return doc;
}

const BenchRowDiff &
findRow(const BenchDiffReport &report, const std::string &label)
{
    for (const BenchRowDiff &row : report.rows)
        if (row.label == label)
            return row;
    static BenchRowDiff missing;
    ADD_FAILURE() << "no row labelled " << label;
    return missing;
}

TEST(BenchDiff, PairedRowsComputeSpeedupAndGeomean)
{
    const Json oldDoc = makeSnapshot({makeRun("micro_sim", "a", 4.0),
                                      makeRun("micro_sim", "b", 1.0)});
    const Json newDoc = makeSnapshot({makeRun("micro_sim", "b", 1.0),
                                      makeRun("micro_sim", "a", 1.0)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_TRUE(report.docError.empty());
    EXPECT_EQ(report.compared, 2u);
    EXPECT_EQ(report.incomparable + report.missing + report.extra, 0u);
    EXPECT_DOUBLE_EQ(findRow(report, "a").speedup, 4.0);
    EXPECT_DOUBLE_EQ(findRow(report, "b").speedup, 1.0);
    // geomean(4, 1) = 2
    EXPECT_NEAR(report.geomeanSpeedup, 2.0, 1e-12);

    EXPECT_TRUE(benchDiffPasses(report, {}));
}

TEST(BenchDiff, SameLabelDifferentFigureDoesNotPair)
{
    const Json oldDoc =
        makeSnapshot({makeRun("micro_tree", "load", 1.0)});
    const Json newDoc =
        makeSnapshot({makeRun("micro_sim", "load", 1.0)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(report.compared, 0u);
    EXPECT_EQ(report.missing, 1u);
    EXPECT_EQ(report.extra, 1u);
    EXPECT_FALSE(benchDiffPasses(report, {}));
}

TEST(BenchDiff, ConfigDriftIsIncomparableAndFailsGates)
{
    const Json oldDoc =
        makeSnapshot({makeRun("micro_sim", "a", 2.0, /*seed=*/1)});
    const Json newDoc =
        makeSnapshot({makeRun("micro_sim", "a", 1.0, /*seed=*/2)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(report.compared, 0u);
    EXPECT_EQ(report.incomparable, 1u);
    EXPECT_EQ(findRow(report, "a").note, "config drift");

    std::string why;
    EXPECT_FALSE(benchDiffPasses(report, {}, &why));
    EXPECT_NE(why.find("incomparable"), std::string::npos);
}

TEST(BenchDiff, ReproScaleMismatchIsDocLevelIncomparable)
{
    const Json oldDoc =
        makeSnapshot({makeRun("micro_sim", "a", 1.0)}, 0.02);
    const Json newDoc =
        makeSnapshot({makeRun("micro_sim", "a", 1.0)}, 1.0);

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_FALSE(report.docError.empty());
    EXPECT_FALSE(benchDiffPasses(report, {}));

    std::ostringstream os;
    printBenchDiff(os, report);
    EXPECT_NE(os.str().find("INCOMPARABLE"), std::string::npos);
}

TEST(BenchDiff, ThresholdGateCatchesSlowdowns)
{
    const Json oldDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0),
                                      makeRun("micro_sim", "b", 1.0)});
    const Json newDoc = makeSnapshot({makeRun("micro_sim", "a", 1.1),
                                      makeRun("micro_sim", "b", 5.0)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(report.compared, 2u);

    BenchDiffOptions generous;
    generous.maxSlowdown = 10.0;
    EXPECT_TRUE(benchDiffPasses(report, generous));

    BenchDiffOptions strict;
    strict.maxSlowdown = 2.0;
    std::string why;
    EXPECT_FALSE(benchDiffPasses(report, strict, &why));
    EXPECT_NE(why.find("micro_sim/b"), std::string::npos);
}

TEST(BenchDiff, MinSpeedupGateProvesImprovements)
{
    const Json oldDoc = makeSnapshot({makeRun("micro_sim", "a", 4.0),
                                      makeRun("micro_sim", "b", 4.0)});
    const Json newDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0),
                                      makeRun("micro_sim", "b", 2.0)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    // geomean(4, 2) = sqrt(8) ~ 2.83
    EXPECT_NEAR(report.geomeanSpeedup, 2.8284271247461903, 1e-12);

    BenchDiffOptions reachable;
    reachable.minSpeedup = 2.0;
    EXPECT_TRUE(benchDiffPasses(report, reachable));

    BenchDiffOptions unreachable;
    unreachable.minSpeedup = 3.0;
    std::string why;
    EXPECT_FALSE(benchDiffPasses(report, unreachable, &why));
    EXPECT_NE(why.find("geomean"), std::string::npos);
}

TEST(BenchDiff, MissingHostSecondsIsIncomparable)
{
    Json oldRun = makeRun("micro_sim", "a", 1.0);
    Json newRun = makeRun("micro_sim", "a", 0.0); // non-positive
    const Json oldDoc = makeSnapshot({std::move(oldRun)});
    const Json newDoc = makeSnapshot({std::move(newRun)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(report.incomparable, 1u);
    EXPECT_FALSE(benchDiffPasses(report, {}));
}

TEST(BenchDiff, ExtraNewRowsAreAllowed)
{
    const Json oldDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0)});
    const Json newDoc =
        makeSnapshot({makeRun("micro_sim", "a", 1.0),
                      makeRun("micro_sim", "fresh_workload", 1.0)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(report.compared, 1u);
    EXPECT_EQ(report.extra, 1u);
    EXPECT_TRUE(benchDiffPasses(report, {}));

    std::ostringstream os;
    printBenchDiff(os, report);
    EXPECT_NE(os.str().find("fresh_workload"), std::string::npos);
    EXPECT_NE(os.str().find("extra"), std::string::npos);
}

TEST(BenchDiff, RepeatedLabelsPairInOrder)
{
    const Json oldDoc = makeSnapshot({makeRun("micro_sim", "a", 2.0),
                                      makeRun("micro_sim", "a", 8.0)});
    const Json newDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0),
                                      makeRun("micro_sim", "a", 2.0)});

    const BenchDiffReport report = diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(report.compared, 2u);
    EXPECT_DOUBLE_EQ(report.rows[0].speedup, 2.0);
    EXPECT_DOUBLE_EQ(report.rows[1].speedup, 4.0);
}

TEST(BenchDiff, FigureFilterScopesTheWholeAccounting)
{
    const Json oldDoc =
        makeSnapshot({makeRun("micro_tree", "slow_component", 1.0),
                      makeRun("micro_sim", "a", 4.0)});
    const Json newDoc =
        makeSnapshot({makeRun("micro_sim", "a", 1.0),
                      makeRun("micro_tree", "slow_component", 2.0)});

    BenchDiffFilter filter;
    filter.figure = "micro_sim";
    const BenchDiffReport report =
        diffBenchSnapshots(oldDoc, newDoc, filter);
    // The micro_tree slowdown is outside the filter: one pair, and
    // the geomean is the filtered row's speedup alone.
    EXPECT_EQ(report.compared, 1u);
    EXPECT_EQ(report.rows.size(), 1u);
    EXPECT_NEAR(report.geomeanSpeedup, 4.0, 1e-12);

    BenchDiffOptions gate;
    gate.minSpeedup = 3.0;
    EXPECT_TRUE(benchDiffPasses(report, gate));
}

TEST(BenchDiff, LabelPrefixFilterSelectsVariantFamilies)
{
    const Json oldDoc =
        makeSnapshot({makeRun("micro_sim", "sim_instructions/base", 2.0),
                      makeRun("micro_sim", "sim_instructions/naive", 8.0),
                      makeRun("micro_sim", "specgen_next", 1.0)});
    const Json newDoc =
        makeSnapshot({makeRun("micro_sim", "sim_instructions/base", 1.0),
                      makeRun("micro_sim", "sim_instructions/naive", 2.0),
                      makeRun("micro_sim", "specgen_next", 1.0)});

    BenchDiffFilter filter;
    filter.labelPrefix = "sim_instructions";
    const BenchDiffReport report =
        diffBenchSnapshots(oldDoc, newDoc, filter);
    EXPECT_EQ(report.compared, 2u);
    // geomean(2, 4) = sqrt(8); specgen_next's 1.0 is excluded.
    EXPECT_NEAR(report.geomeanSpeedup, 2.8284271247461903, 1e-12);
}

TEST(BenchDiff, FilterMatchingNothingFailsGates)
{
    const Json oldDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0)});
    const Json newDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0)});

    BenchDiffFilter filter;
    filter.figure = "no_such_figure";
    const BenchDiffReport report =
        diffBenchSnapshots(oldDoc, newDoc, filter);
    EXPECT_EQ(report.compared, 0u);

    std::string why;
    EXPECT_FALSE(benchDiffPasses(report, {}, &why));
    EXPECT_NE(why.find("no comparable rows"), std::string::npos);
}

TEST(BenchDiff, FilterHidesMissingRowsOutsideItsScope)
{
    // A row dropped from the new snapshot normally fails every gate;
    // when it falls outside the filter the filtered verdict must not
    // see it (the gate is about the selected subset only).
    const Json oldDoc =
        makeSnapshot({makeRun("micro_tree", "retired_row", 1.0),
                      makeRun("micro_sim", "a", 2.0)});
    const Json newDoc = makeSnapshot({makeRun("micro_sim", "a", 1.0)});

    const BenchDiffReport unfiltered =
        diffBenchSnapshots(oldDoc, newDoc);
    EXPECT_EQ(unfiltered.missing, 1u);
    EXPECT_FALSE(benchDiffPasses(unfiltered, {}));

    BenchDiffFilter filter;
    filter.figure = "micro_sim";
    const BenchDiffReport filtered =
        diffBenchSnapshots(oldDoc, newDoc, filter);
    EXPECT_EQ(filtered.missing, 0u);
    EXPECT_TRUE(benchDiffPasses(filtered, {}));
}

TEST(BenchDiff, MalformedDocumentIsDocLevelIncomparable)
{
    const Json notAnObject = Json::array();
    const Json fine = makeSnapshot({makeRun("micro_sim", "a", 1.0)});

    const BenchDiffReport report =
        diffBenchSnapshots(notAnObject, fine);
    EXPECT_FALSE(report.docError.empty());
    EXPECT_FALSE(benchDiffPasses(report, {}));
}

} // namespace
} // namespace cmt
