/**
 * @file
 * Regression-harness unit tests: synthetic baseline/current sweep
 * documents exercising every verdict path of compareSweeps() -
 * clean match, stat drift, config drift, missing/extra rows, error
 * flips, wall-clock tolerance bands, and incomparable documents.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/regress.h"

namespace cmt
{
namespace
{

Json
makeRun(const std::string &label, double ipc, bool ok = true,
        double hostSeconds = 0.5)
{
    Json run = Json::object();
    run.set("label", label);
    run.set("ok", ok);
    run.set("memoized", false);
    if (!ok)
        run.set("error", "panic: injected");
    run.set("host_seconds", hostSeconds);
    Json config = Json::object();
    config.set("benchmark", label);
    config.set("seed", 1);
    run.set("config", std::move(config));
    Json result = Json::object();
    result.set("benchmark", label);
    result.set("scheme", "cached");
    result.set("ipc", ipc);
    result.set("cycles", 1'000'000);
    run.set("result", std::move(result));
    return run;
}

Json
makeSweep(std::vector<Json> runs, double scale = 0.02)
{
    Json doc = Json::object();
    doc.set("figure", "fig_test");
    doc.set("repro_scale", scale);
    doc.set("jobs", 4);
    Json arr = Json::array();
    for (Json &run : runs)
        arr.push(std::move(run));
    doc.set("runs", std::move(arr));
    return doc;
}

const RowVerdict &
findRow(const RegressReport &report, const std::string &label)
{
    for (const RowVerdict &row : report.rows)
        if (row.label == label)
            return row;
    static RowVerdict none;
    ADD_FAILURE() << "no verdict for " << label;
    return none;
}

TEST(Regress, IdenticalSweepsAreClean)
{
    const Json doc =
        makeSweep({makeRun("gcc", 0.5), makeRun("swim", 0.25)});
    const RegressReport report = compareSweeps(doc, doc);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.figure, "fig_test");
    EXPECT_EQ(report.matched, 2u);
    EXPECT_EQ(report.drifted + report.missing + report.extra, 0u);
}

TEST(Regress, DifferentJobsAndHostSecondsStillClean)
{
    // Worker count and wall-clock are execution details, not results.
    Json baseline =
        makeSweep({makeRun("gcc", 0.5, true, 2.0)});
    baseline.set("jobs", 2);
    Json current = makeSweep({makeRun("gcc", 0.5, true, 0.01)});
    current.set("jobs", 16);
    EXPECT_TRUE(compareSweeps(baseline, current).clean());
}

TEST(Regress, StatDriftIsDetectedWithRatio)
{
    const Json baseline = makeSweep({makeRun("gcc", 0.5)});
    const Json current = makeSweep({makeRun("gcc", 0.625)});
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.drifted, 1u);
    const RowVerdict &row = findRow(report, "gcc");
    EXPECT_EQ(row.status, RowStatus::kDrift);
    ASSERT_EQ(row.deltas.size(), 1u);
    EXPECT_EQ(row.deltas[0].stat, "ipc");
    EXPECT_EQ(row.deltas[0].baseline, "0.5");
    EXPECT_EQ(row.deltas[0].current, "0.625");
    ASSERT_TRUE(row.deltas[0].hasRatio);
    EXPECT_EQ(row.deltas[0].ratio, 1.25);
}

TEST(Regress, NewAndVanishedResultFieldsAreDrift)
{
    const Json baseline = makeSweep({makeRun("gcc", 0.5)});
    Json changed = makeRun("gcc", 0.5);
    Json result = changed.at("result");
    result.set("new_stat", 7);
    changed.set("result", std::move(result));
    const Json current = makeSweep({std::move(changed)});
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    const RowVerdict &row = findRow(report, "gcc");
    ASSERT_EQ(row.deltas.size(), 1u);
    EXPECT_EQ(row.deltas[0].stat, "new_stat");
    EXPECT_EQ(row.deltas[0].baseline, "-");
    EXPECT_EQ(row.deltas[0].current, "7");
}

TEST(Regress, ConfigDriftIsDetected)
{
    const Json baseline = makeSweep({makeRun("gcc", 0.5)});
    Json changed = makeRun("gcc", 0.5);
    Json config = changed.at("config");
    config.set("seed", 2);
    changed.set("config", std::move(config));
    const Json current = makeSweep({std::move(changed)});
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    const RowVerdict &row = findRow(report, "gcc");
    EXPECT_EQ(row.status, RowStatus::kDrift);
    ASSERT_EQ(row.deltas.size(), 1u);
    EXPECT_EQ(row.deltas[0].stat, "config");
}

TEST(Regress, MissingAndExtraRows)
{
    const Json baseline =
        makeSweep({makeRun("gcc", 0.5), makeRun("swim", 0.25)});
    const Json current =
        makeSweep({makeRun("gcc", 0.5), makeRun("vpr", 0.75)});
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.matched, 1u);
    EXPECT_EQ(report.missing, 1u);
    EXPECT_EQ(report.extra, 1u);
    EXPECT_EQ(findRow(report, "swim").status, RowStatus::kMissing);
    EXPECT_EQ(findRow(report, "vpr").status, RowStatus::kExtra);
}

TEST(Regress, RepeatedLabelsPairInOrder)
{
    const Json baseline =
        makeSweep({makeRun("dup", 0.5), makeRun("dup", 0.25)});
    const Json current =
        makeSweep({makeRun("dup", 0.5), makeRun("dup", 0.25)});
    EXPECT_TRUE(compareSweeps(baseline, current).clean());

    const Json swapped =
        makeSweep({makeRun("dup", 0.25), makeRun("dup", 0.5)});
    EXPECT_FALSE(compareSweeps(baseline, swapped).clean());
}

TEST(Regress, ErrorFlagFlipIsMismatch)
{
    const Json baseline = makeSweep({makeRun("gcc", 0.5, true)});
    const Json current = makeSweep({makeRun("gcc", 0, false)});
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(findRow(report, "gcc").status,
              RowStatus::kErrorMismatch);
    // And the symmetric direction: a fixed failure is also a change.
    EXPECT_FALSE(compareSweeps(current, baseline).clean());
}

TEST(Regress, MatchingErrorRowsCompareByMessage)
{
    const Json both = makeSweep({makeRun("gcc", 0, false)});
    EXPECT_TRUE(compareSweeps(both, both).clean());

    Json other = makeRun("gcc", 0, false);
    other.set("error", "panic: different cycle");
    const Json current = makeSweep({std::move(other)});
    const RegressReport report = compareSweeps(both, current);
    EXPECT_FALSE(report.clean());
    ASSERT_EQ(findRow(report, "gcc").deltas.size(), 1u);
    EXPECT_EQ(findRow(report, "gcc").deltas[0].stat, "error");
}

TEST(Regress, TimeToleranceBand)
{
    const Json baseline = makeSweep({makeRun("gcc", 0.5, true, 1.0)});
    const Json slower = makeSweep({makeRun("gcc", 0.5, true, 2.5)});

    // Default: wall-clock is ignored entirely.
    EXPECT_TRUE(compareSweeps(baseline, slower).clean());

    RegressOptions strict;
    strict.timeTolerance = 2.0;
    const RegressReport flagged =
        compareSweeps(baseline, slower, strict);
    EXPECT_FALSE(flagged.clean());
    EXPECT_EQ(findRow(flagged, "gcc").status, RowStatus::kTimeDrift);

    RegressOptions loose;
    loose.timeTolerance = 3.0;
    EXPECT_TRUE(compareSweeps(baseline, slower, loose).clean());

    // The band is symmetric: a 2.5x speed-up trips it too.
    EXPECT_FALSE(compareSweeps(slower, baseline, strict).clean());
}

TEST(Regress, FigureMismatchIsIncomparable)
{
    Json baseline = makeSweep({makeRun("gcc", 0.5)});
    Json current = makeSweep({makeRun("gcc", 0.5)});
    current.set("figure", "fig_other");
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.docError.empty());
    EXPECT_TRUE(report.rows.empty());
}

TEST(Regress, ReproScaleMismatchIsIncomparable)
{
    const Json baseline = makeSweep({makeRun("gcc", 0.5)}, 0.02);
    const Json current = makeSweep({makeRun("gcc", 0.5)}, 1.0);
    const RegressReport report = compareSweeps(baseline, current);
    EXPECT_FALSE(report.clean());
    EXPECT_NE(report.docError.find("repro_scale"), std::string::npos);
}

TEST(Regress, MalformedDocumentsAreIncomparableNotFatal)
{
    const Json good = makeSweep({makeRun("gcc", 0.5)});
    EXPECT_FALSE(compareSweeps(Json("just a string"), good).clean());
    EXPECT_FALSE(compareSweeps(good, Json(42)).clean());
    Json noRuns = Json::object();
    noRuns.set("figure", "fig_test");
    EXPECT_FALSE(compareSweeps(noRuns, good).clean());
}

TEST(Regress, ReportPrintsRatioTableAndSummary)
{
    const Json baseline = makeSweep(
        {makeRun("gcc", 0.5), makeRun("swim", 0.25)});
    const Json current = makeSweep(
        {makeRun("gcc", 0.75), makeRun("swim", 0.25)});
    const RegressReport report = compareSweeps(baseline, current);

    std::ostringstream os;
    printReport(os, report);
    const std::string text = os.str();
    EXPECT_NE(text.find("fig_test"), std::string::npos);
    EXPECT_NE(text.find("drift"), std::string::npos);
    EXPECT_NE(text.find("ipc"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos); // the ratio
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    // Matched rows stay out of the table unless verbose.
    EXPECT_EQ(text.find("swim"), std::string::npos);

    std::ostringstream verbose;
    printReport(verbose, report, true);
    EXPECT_NE(verbose.str().find("swim"), std::string::npos);

    std::ostringstream ok;
    printReport(ok, compareSweeps(baseline, baseline));
    EXPECT_NE(ok.str().find("OK"), std::string::npos);
}

} // namespace
} // namespace cmt
