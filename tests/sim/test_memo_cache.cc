/**
 * @file
 * MemoCache unit tests: round-trip persistence, every corruption
 * failure mode degrading to a miss (never a crash), concurrent
 * appends merging cleanly, and the SweepRunner integration that makes
 * a warm re-run execute zero jobs with byte-identical output.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sim/memo_cache.h"
#include "sim/runner.h"

namespace fs = std::filesystem;

namespace cmt
{
namespace
{

/** Fresh empty directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / ("memo_cache_" + name);
    fs::remove_all(dir);
    return dir.string();
}

SimResult
sampleResult(const std::string &bench, double ipc)
{
    SimResult r;
    r.benchmark = bench;
    r.scheme = Scheme::kCached;
    r.instructions = 1'000'000;
    r.cycles = 2'500'000;
    r.ipc = ipc;
    r.l2DataMissRate = 0.125;
    r.extraReadsPerMiss = 0.4375;
    r.bandwidthBytesPerCycle = 1.0 / 3.0;
    r.l2DemandAccesses = 40'000;
    r.l2DemandMisses = 5'000;
    r.integrityFailures = 0;
    r.bufferStalls = 123;
    r.branchMispredictRate = 0.0625;
    return r;
}

MemoCache::Row
sampleRow(std::uint64_t fp, const std::string &bench, double ipc)
{
    MemoCache::Row row;
    row.fingerprint = fp;
    row.hostSeconds = 0.25;
    row.result = sampleResult(bench, ipc);
    return row;
}

void
writeFile(const std::string &dir, const std::string &name,
          const std::string &content)
{
    fs::create_directories(dir);
    std::ofstream os(fs::path(dir) / name, std::ios::binary);
    os << content;
}

TEST(MemoCache, MissingDirectoryIsEmptyCache)
{
    MemoCache cache(freshDir("missing"));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.loadedFiles(), 0u);
    EXPECT_EQ(cache.find(42), nullptr);
}

TEST(MemoCache, RoundTripAcrossInstances)
{
    const std::string dir = freshDir("roundtrip");
    {
        MemoCache cache(dir);
        MemoCache::Row row = sampleRow(0xdeadbeef, "gcc", 0.625);
        row.result.perCoreIpc = {0.5, 0.125, 1.0 / 3.0};
        ASSERT_TRUE(cache.append({row, sampleRow(7, "swim", 0.25)}));
        // The appending instance also serves its own rows.
        ASSERT_NE(cache.find(7), nullptr);
    }
    MemoCache reloaded(dir);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.loadedFiles(), 1u);
    const MemoCache::Row *row = reloaded.find(0xdeadbeef);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->hostSeconds, 0.25);
    EXPECT_EQ(row->result.benchmark, "gcc");
    EXPECT_EQ(row->result.scheme, Scheme::kCached);
    EXPECT_EQ(row->result.ipc, 0.625);
    EXPECT_EQ(row->result.bandwidthBytesPerCycle, 1.0 / 3.0);
    EXPECT_EQ(row->result.bufferStalls, 123u);
    ASSERT_EQ(row->result.perCoreIpc.size(), 3u);
    EXPECT_EQ(row->result.perCoreIpc[2], 1.0 / 3.0);
    EXPECT_EQ(reloaded.find(1), nullptr);
}

TEST(MemoCache, AppendEmptyWritesNothing)
{
    const std::string dir = freshDir("append_empty");
    MemoCache cache(dir);
    EXPECT_TRUE(cache.append({}));
    EXPECT_FALSE(fs::exists(dir));
}

TEST(MemoCache, TruncatedShardDegradesToMiss)
{
    const std::string dir = freshDir("truncated");
    {
        MemoCache cache(dir);
        ASSERT_TRUE(cache.append({sampleRow(11, "gcc", 0.5)}));
    }
    // Chop the shard mid-document.
    fs::path shard;
    for (const auto &entry : fs::directory_iterator(dir))
        shard = entry.path();
    ASSERT_FALSE(shard.empty());
    const auto size = fs::file_size(shard);
    fs::resize_file(shard, size / 2);

    MemoCache cache(dir);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find(11), nullptr);
    EXPECT_EQ(cache.skippedFiles(), 1u);
}

TEST(MemoCache, GarbageShardDegradesToMiss)
{
    const std::string dir = freshDir("garbage");
    writeFile(dir, "junk.json", "this is not { json at all ]]");
    writeFile(dir, "empty.json", "");
    MemoCache cache(dir);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.skippedFiles(), 2u);
}

TEST(MemoCache, WrongSchemaVersionIsIgnoredWholesale)
{
    const std::string dir = freshDir("schema");
    Json doc = Json::object();
    doc.set("memo_schema", MemoCache::kSchemaVersion + 1);
    Json rows = Json::array();
    rows.push(MemoCache::rowToJson(sampleRow(5, "gcc", 0.5)));
    doc.set("rows", std::move(rows));
    writeFile(dir, "future.json", doc.dump(2));

    MemoCache cache(dir);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.find(5), nullptr);
    EXPECT_EQ(cache.skippedFiles(), 1u);
}

TEST(MemoCache, MalformedRowIsSkippedNeighboursSurvive)
{
    const std::string dir = freshDir("bad_row");
    Json doc = Json::object();
    doc.set("memo_schema", MemoCache::kSchemaVersion);
    Json rows = Json::array();
    rows.push(MemoCache::rowToJson(sampleRow(1, "gcc", 0.5)));
    Json noFingerprint =
        MemoCache::rowToJson(sampleRow(2, "swim", 0.25));
    noFingerprint.set("fingerprint", "not-hex");
    rows.push(std::move(noFingerprint));
    Json badScheme = MemoCache::rowToJson(sampleRow(3, "vpr", 0.75));
    Json result = badScheme.at("result");
    result.set("scheme", "no-such-scheme");
    badScheme.set("result", std::move(result));
    rows.push(std::move(badScheme));
    rows.push(Json("not an object"));
    doc.set("rows", std::move(rows));
    writeFile(dir, "mixed.json", doc.dump(2));

    MemoCache cache(dir);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_EQ(cache.find(3), nullptr);
    EXPECT_EQ(cache.loadedFiles(), 1u);
}

TEST(MemoCache, ConcurrentAppendsMergeCleanly)
{
    const std::string dir = freshDir("concurrent");
    constexpr int kWriters = 4;
    constexpr int kRowsPerWriter = 8;

    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            // Each writer simulates an independent runner: its own
            // MemoCache instance over the shared directory.
            MemoCache cache(dir);
            std::vector<MemoCache::Row> rows;
            for (int i = 0; i < kRowsPerWriter; ++i)
                rows.push_back(sampleRow(
                    static_cast<std::uint64_t>(w * 100 + i), "gcc",
                    0.5 + w));
            if (!cache.append(rows))
                failures.fetch_add(1);
        });
    }
    for (std::thread &t : writers)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    MemoCache merged(dir);
    EXPECT_EQ(merged.size(),
              static_cast<std::size_t>(kWriters * kRowsPerWriter));
    EXPECT_EQ(merged.loadedFiles(),
              static_cast<std::size_t>(kWriters));
    for (int w = 0; w < kWriters; ++w)
        for (int i = 0; i < kRowsPerWriter; ++i)
            EXPECT_NE(merged.find(static_cast<std::uint64_t>(
                          w * 100 + i)),
                      nullptr);
    // No leftover temp files from the atomic rename protocol.
    for (const auto &entry : fs::directory_iterator(dir))
        EXPECT_EQ(entry.path().extension(), ".json");
}

// ---------------------------------------------------------------------
// SweepRunner integration: the property the CI job leans on.
// ---------------------------------------------------------------------

SystemConfig
tinyConfig(const std::string &bench, Scheme scheme)
{
    SystemConfig cfg;
    cfg.benchmark = bench;
    cfg.warmupInstructions = 1'000;
    cfg.measureInstructions = 3'000;
    cfg.l2.scheme = scheme;
    return cfg;
}

std::string
sweepDump(SweepRunner &runner)
{
    std::string out;
    for (std::size_t i = 0; i < runner.jobCount(); ++i)
        out += toJson(runner.job(i), runner.entry(i)).dump(2);
    return out;
}

TEST(MemoCacheRunner, WarmRerunExecutesNothingAndMatchesBytes)
{
    const std::string dir = freshDir("runner");
    auto calls = std::make_shared<std::atomic<int>>(0);
    const auto countingSim = [calls](const SystemConfig &cfg) {
        calls->fetch_add(1);
        return simulate(cfg);
    };
    const auto buildRunner = [&](MemoCache &cache) {
        SweepRunner::Options opt;
        opt.jobs = 2;
        opt.memoCache = &cache;
        opt.simulateFn = countingSim;
        auto runner = std::make_unique<SweepRunner>(std::move(opt));
        for (const char *bench : {"gcc", "swim"})
            for (const Scheme scheme : {Scheme::kBase, Scheme::kCached})
                runner->add(std::string(bench) + "/" +
                                schemeName(scheme),
                            tinyConfig(bench, scheme));
        // An in-sweep duplicate: must stay "memoized", not "disk".
        runner->add("dup", tinyConfig("gcc", Scheme::kBase));
        return runner;
    };

    MemoCache cold(dir);
    auto first = buildRunner(cold);
    first->run();
    EXPECT_EQ(calls->load(), 4);
    EXPECT_EQ(first->executedJobs(), 4u);
    EXPECT_EQ(first->diskHits(), 0u);
    EXPECT_TRUE(first->entry(4).memoized);

    MemoCache warm(dir);
    EXPECT_EQ(warm.size(), 4u);
    auto second = buildRunner(warm);
    second->run();
    EXPECT_EQ(calls->load(), 4) << "warm re-run must not simulate";
    EXPECT_EQ(second->executedJobs(), 0u);
    EXPECT_EQ(second->diskHits(), 4u);
    EXPECT_TRUE(second->entry(0).fromCache);
    EXPECT_FALSE(second->entry(0).memoized);
    EXPECT_TRUE(second->entry(4).memoized);

    // Byte-identical serialized sweep, host_seconds included.
    EXPECT_EQ(sweepDump(*first), sweepDump(*second));
}

TEST(MemoCacheRunner, ErrorRowsAreNeverCached)
{
    const std::string dir = freshDir("errors");
    const auto failingSim = [](const SystemConfig &cfg) -> SimResult {
        if (cfg.benchmark == "swim")
            throw std::runtime_error("boom");
        return SimResult{};
    };
    {
        MemoCache cache(dir);
        SweepRunner::Options opt;
        opt.jobs = 1;
        opt.memoCache = &cache;
        opt.simulateFn = failingSim;
        SweepRunner runner(std::move(opt));
        runner.add("ok", tinyConfig("gcc", Scheme::kBase));
        runner.add("bad", tinyConfig("swim", Scheme::kBase));
        runner.run();
        EXPECT_FALSE(runner.entry(1).ok);
    }
    MemoCache reloaded(dir);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_NE(
        reloaded.find(configFingerprint(
            tinyConfig("gcc", Scheme::kBase))),
        nullptr);
    EXPECT_EQ(
        reloaded.find(configFingerprint(
            tinyConfig("swim", Scheme::kBase))),
        nullptr);
}

TEST(MemoCacheRunner, ThunkWithExplicitFingerprintHitsCache)
{
    const std::string dir = freshDir("thunk");
    auto calls = std::make_shared<std::atomic<int>>(0);
    const auto thunk = [calls](const SystemConfig &) {
        calls->fetch_add(1);
        SimResult r;
        r.benchmark = "mix";
        r.ipc = 1.5;
        r.perCoreIpc = {0.75, 0.75};
        return r;
    };
    const auto runOnce = [&](MemoCache &cache) {
        SweepRunner::Options opt;
        opt.jobs = 1;
        opt.memoCache = &cache;
        SweepRunner runner(std::move(opt));
        SweepJob job;
        job.label = "mix";
        job.config = tinyConfig("gcc", Scheme::kBase);
        job.simulate = thunk;
        job.fingerprint = 0x12345678u;
        runner.add(std::move(job));
        runner.run();
        return runner.entry(0);
    };

    MemoCache cold(dir);
    const SweepEntry first = runOnce(cold);
    EXPECT_EQ(calls->load(), 1);
    EXPECT_FALSE(first.fromCache);

    MemoCache warm(dir);
    const SweepEntry second = runOnce(warm);
    EXPECT_EQ(calls->load(), 1) << "fingerprinted thunk must memoize";
    EXPECT_TRUE(second.fromCache);
    ASSERT_EQ(second.result.perCoreIpc.size(), 2u);
    EXPECT_EQ(second.result.perCoreIpc[0], 0.75);
    EXPECT_EQ(second.hostSeconds, first.hostSeconds);
}

} // namespace
} // namespace cmt
