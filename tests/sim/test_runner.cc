/**
 * @file
 * SweepRunner unit tests: parallel/serial equivalence, failure
 * isolation, memoization, and config-fingerprint sensitivity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <utility>

#include "sim/runner.h"
#include "sim/smp.h"
#include "support/logging.h"

namespace cmt
{
namespace
{

/** Small but real simulation windows so runs finish in milliseconds. */
SystemConfig
tinyConfig(const std::string &bench, Scheme scheme)
{
    SystemConfig cfg;
    cfg.benchmark = bench;
    cfg.warmupInstructions = 2'000;
    cfg.measureInstructions = 6'000;
    cfg.l2.scheme = scheme;
    return cfg;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l2DataMissRate, b.l2DataMissRate);
    EXPECT_EQ(a.extraReadsPerMiss, b.extraReadsPerMiss);
    EXPECT_EQ(a.bandwidthBytesPerCycle, b.bandwidthBytesPerCycle);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses);
    EXPECT_EQ(a.integrityFailures, b.integrityFailures);
    EXPECT_EQ(a.bufferStalls, b.bufferStalls);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
}

std::vector<SweepEntry>
runGrid(unsigned jobs)
{
    SweepRunner::Options opt;
    opt.jobs = jobs;
    SweepRunner runner(std::move(opt));
    for (const char *bench : {"gcc", "swim", "twolf"}) {
        for (const Scheme scheme :
             {Scheme::kBase, Scheme::kCached, Scheme::kNaive}) {
            runner.add(std::string(bench) + "/" + schemeName(scheme),
                       tinyConfig(bench, scheme));
        }
    }
    return runner.run();
}

TEST(SweepRunner, ParallelMatchesSerial)
{
    const std::vector<SweepEntry> serial = runGrid(1);
    const std::vector<SweepEntry> parallel = runGrid(4);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 9u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].label, parallel[i].label);
        EXPECT_TRUE(serial[i].ok);
        EXPECT_TRUE(parallel[i].ok);
        expectSameResult(serial[i].result, parallel[i].result);
    }
}

TEST(SweepRunner, ThrowingJobBecomesErrorEntry)
{
    SweepRunner::Options opt;
    opt.jobs = 2;
    opt.simulateFn = [](const SystemConfig &cfg) -> SimResult {
        if (cfg.benchmark == "swim")
            throw std::runtime_error("injected failure");
        SimResult r;
        r.benchmark = cfg.benchmark;
        r.ipc = 1.0;
        return r;
    };
    SweepRunner runner(std::move(opt));
    runner.add("a", tinyConfig("gcc", Scheme::kBase));
    runner.add("b", tinyConfig("swim", Scheme::kBase));
    runner.add("c", tinyConfig("twolf", Scheme::kBase));
    const auto &entries = runner.run();

    ASSERT_EQ(entries.size(), 3u);
    EXPECT_TRUE(entries[0].ok);
    EXPECT_FALSE(entries[1].ok);
    EXPECT_EQ(entries[1].error, "injected failure");
    // The failed row stays identifiable.
    EXPECT_EQ(entries[1].result.benchmark, "swim");
    EXPECT_EQ(entries[1].result.ipc, 0.0);
    EXPECT_TRUE(entries[2].ok);
    EXPECT_EQ(entries[2].result.ipc, 1.0);
}

TEST(SweepRunner, PanicBecomesErrorEntryNotAbort)
{
    SweepRunner::Options opt;
    opt.jobs = 1;
    opt.simulateFn = [](const SystemConfig &cfg) -> SimResult {
        if (cfg.benchmark == "gcc")
            cmt_panic("deadlock at cycle %d", 42);
        return SimResult{};
    };
    SweepRunner runner(std::move(opt));
    runner.add("bad", tinyConfig("gcc", Scheme::kBase));
    runner.add("good", tinyConfig("swim", Scheme::kBase));
    const auto &entries = runner.run();

    EXPECT_FALSE(entries[0].ok);
    EXPECT_NE(entries[0].error.find("deadlock at cycle 42"),
              std::string::npos);
    EXPECT_TRUE(entries[1].ok);
}

TEST(SweepRunner, UnknownBenchmarkIsIsolated)
{
    // profileFor() raises cmt_fatal for unknown names; inside a
    // sweep that must become an error row, not exit(1).
    SweepRunner::Options opt;
    opt.jobs = 1;
    SweepRunner runner(std::move(opt));
    runner.add("bogus", tinyConfig("no-such-benchmark", Scheme::kBase));
    runner.add("real", tinyConfig("gcc", Scheme::kBase));
    const auto &entries = runner.run();

    EXPECT_FALSE(entries[0].ok);
    EXPECT_FALSE(entries[0].error.empty());
    EXPECT_TRUE(entries[1].ok);
    EXPECT_GT(entries[1].result.ipc, 0.0);
}

TEST(SweepRunner, MemoizationRunsDuplicateConfigsOnce)
{
    auto calls = std::make_shared<std::atomic<int>>(0);
    SweepRunner::Options opt;
    opt.jobs = 1;
    opt.simulateFn = [calls](const SystemConfig &cfg) {
        calls->fetch_add(1);
        SimResult r;
        r.benchmark = cfg.benchmark;
        r.ipc = 2.5;
        return r;
    };
    SweepRunner runner(std::move(opt));
    const SystemConfig dup = tinyConfig("gcc", Scheme::kCached);
    runner.add("first", dup);
    runner.add("second", dup);
    runner.add("other", tinyConfig("gcc", Scheme::kNaive));
    runner.add("third", dup);
    EXPECT_EQ(runner.uniqueJobs(), 2u);
    const auto &entries = runner.run();

    EXPECT_EQ(calls->load(), 2);
    EXPECT_FALSE(entries[0].memoized);
    EXPECT_TRUE(entries[1].memoized);
    EXPECT_FALSE(entries[2].memoized);
    EXPECT_TRUE(entries[3].memoized);
    // Labels are per-submission even when the result is shared.
    EXPECT_EQ(entries[1].label, "second");
    EXPECT_EQ(entries[3].label, "third");
    expectSameResult(entries[0].result, entries[1].result);
    expectSameResult(entries[0].result, entries[3].result);
}

TEST(SweepRunner, CustomThunkJobsAreNeverMemoized)
{
    auto calls = std::make_shared<std::atomic<int>>(0);
    const auto thunk = [calls](const SystemConfig &) {
        calls->fetch_add(1);
        return SimResult{};
    };
    SweepRunner::Options opt;
    opt.jobs = 1;
    SweepRunner runner(std::move(opt));
    SweepJob a;
    a.label = "a";
    a.config = tinyConfig("gcc", Scheme::kBase);
    a.simulate = thunk;
    SweepJob b = a;
    b.label = "b";
    runner.add(std::move(a));
    runner.add(std::move(b));
    EXPECT_EQ(runner.uniqueJobs(), 2u);
    runner.run();
    EXPECT_EQ(calls->load(), 2);
}

// ---------------------------------------------------------------------
// Fingerprint sensitivity: flipping any field must change the key,
// or stale results would silently be reused as configs grow fields.
// ---------------------------------------------------------------------

using Mutator = void (*)(SystemConfig &);

struct NamedMutator
{
    const char *field;
    Mutator mutate;
};

const NamedMutator kMutators[] = {
    {"benchmark", [](SystemConfig &c) { c.benchmark = "swim"; }},
    {"seed", [](SystemConfig &c) { c.seed += 1; }},
    {"warmupInstructions",
     [](SystemConfig &c) { c.warmupInstructions += 1; }},
    {"measureInstructions",
     [](SystemConfig &c) { c.measureInstructions += 1; }},

    {"core.fetchWidth", [](SystemConfig &c) { c.core.fetchWidth += 1; }},
    {"core.issueWidth", [](SystemConfig &c) { c.core.issueWidth += 1; }},
    {"core.commitWidth",
     [](SystemConfig &c) { c.core.commitWidth += 1; }},
    {"core.windowSize", [](SystemConfig &c) { c.core.windowSize += 1; }},
    {"core.lsqSize", [](SystemConfig &c) { c.core.lsqSize += 1; }},
    {"core.l1SizeBytes",
     [](SystemConfig &c) { c.core.l1SizeBytes *= 2; }},
    {"core.l1Assoc", [](SystemConfig &c) { c.core.l1Assoc += 1; }},
    {"core.l1BlockSize",
     [](SystemConfig &c) { c.core.l1BlockSize *= 2; }},
    {"core.l1HitLatency",
     [](SystemConfig &c) { c.core.l1HitLatency += 1; }},
    {"core.l1dMshrs", [](SystemConfig &c) { c.core.l1dMshrs += 1; }},
    {"core.aluLatency", [](SystemConfig &c) { c.core.aluLatency += 1; }},
    {"core.mulLatency", [](SystemConfig &c) { c.core.mulLatency += 1; }},
    {"core.fpuLatency", [](SystemConfig &c) { c.core.fpuLatency += 1; }},
    {"core.mispredictPenalty",
     [](SystemConfig &c) { c.core.mispredictPenalty += 1; }},
    {"core.bpredHistoryBits",
     [](SystemConfig &c) { c.core.bpredHistoryBits += 1; }},
    {"core.bpredTableBits",
     [](SystemConfig &c) { c.core.bpredTableBits += 1; }},
    {"core.tlbEntries", [](SystemConfig &c) { c.core.tlbEntries *= 2; }},
    {"core.tlbAssoc", [](SystemConfig &c) { c.core.tlbAssoc += 1; }},
    {"core.tlbMissPenalty",
     [](SystemConfig &c) { c.core.tlbMissPenalty += 1; }},

    {"l2.scheme", [](SystemConfig &c) { c.l2.scheme = Scheme::kNaive; }},
    {"l2.sizeBytes", [](SystemConfig &c) { c.l2.sizeBytes *= 2; }},
    {"l2.assoc", [](SystemConfig &c) { c.l2.assoc *= 2; }},
    {"l2.blockSize", [](SystemConfig &c) { c.l2.blockSize *= 2; }},
    {"l2.chunkSize", [](SystemConfig &c) { c.l2.chunkSize *= 2; }},
    {"l2.protectedSize",
     [](SystemConfig &c) { c.l2.protectedSize *= 2; }},
    {"l2.hitLatency", [](SystemConfig &c) { c.l2.hitLatency += 1; }},
    {"l2.readBufferEntries",
     [](SystemConfig &c) { c.l2.readBufferEntries += 1; }},
    {"l2.writeBufferEntries",
     [](SystemConfig &c) { c.l2.writeBufferEntries += 1; }},
    {"l2.authKind",
     [](SystemConfig &c) {
         c.l2.authKind = Authenticator::Kind::kSha1Trunc;
     }},
    {"l2.timestamps",
     [](SystemConfig &c) { c.l2.timestamps = !c.l2.timestamps; }},
    {"l2.writeAllocNoFetch",
     [](SystemConfig &c) {
         c.l2.writeAllocNoFetch = !c.l2.writeAllocNoFetch;
     }},
    {"l2.speculativeChecks",
     [](SystemConfig &c) {
         c.l2.speculativeChecks = !c.l2.speculativeChecks;
     }},
    {"l2.encryptData",
     [](SystemConfig &c) { c.l2.encryptData = !c.l2.encryptData; }},
    {"l2.decryptLatency",
     [](SystemConfig &c) { c.l2.decryptLatency += 1; }},
    {"l2.key", [](SystemConfig &c) { c.l2.key[7] ^= 0xff; }},

    {"mem.cpuCyclesPerBusCycle",
     [](SystemConfig &c) { c.mem.cpuCyclesPerBusCycle += 1; }},
    {"mem.busWidthBytes",
     [](SystemConfig &c) { c.mem.busWidthBytes *= 2; }},
    {"mem.dramLatency", [](SystemConfig &c) { c.mem.dramLatency += 1; }},

    {"hash.latency", [](SystemConfig &c) { c.hash.latency += 1; }},
    {"hash.throughputBytesPerCycle",
     [](SystemConfig &c) { c.hash.throughputBytesPerCycle *= 2; }},
};

TEST(ConfigFingerprint, StableForEqualConfigs)
{
    const SystemConfig a, b;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));
}

TEST(ConfigFingerprint, EveryFieldChangesTheKey)
{
    const SystemConfig base;
    const std::uint64_t ref = configFingerprint(base);
    for (const NamedMutator &m : kMutators) {
        SystemConfig mutated = base;
        m.mutate(mutated);
        EXPECT_NE(configFingerprint(mutated), ref)
            << "fingerprint ignores field " << m.field;
    }
}

TEST(ConfigFingerprint, DistinctFieldFlipsGetDistinctKeys)
{
    // Transposition resistance: each mutated config also differs
    // from every other mutated config (tag-per-field hashing).
    const SystemConfig base;
    std::vector<std::uint64_t> keys;
    for (const NamedMutator &m : kMutators) {
        SystemConfig mutated = base;
        m.mutate(mutated);
        keys.push_back(configFingerprint(mutated));
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        for (std::size_t j = i + 1; j < keys.size(); ++j) {
            EXPECT_NE(keys[i], keys[j])
                << kMutators[i].field << " collides with "
                << kMutators[j].field;
        }
    }
}

// ---------------------------------------------------------------------
// SmpConfig fingerprints: same guarantees for the SMP key, plus
// domain separation from the single-core key (shared param blocks
// must not let the two config types alias each other).
// ---------------------------------------------------------------------

using SmpMutator = void (*)(SmpConfig &);

struct NamedSmpMutator
{
    const char *field;
    SmpMutator mutate;
};

// Top-level SmpConfig fields exhaustively; the nested param blocks go
// through the same per-field folds the SystemConfig mutators above
// already cover exhaustively, so one sentinel field per block is
// enough to prove each block is folded in at all.
const NamedSmpMutator kSmpMutators[] = {
    {"benchmarks[0]",
     [](SmpConfig &c) { c.benchmarks[0] = "twolf"; }},
    {"benchmarks order",
     [](SmpConfig &c) {
         std::swap(c.benchmarks[0], c.benchmarks[1]);
     }},
    {"benchmarks count",
     [](SmpConfig &c) { c.benchmarks.push_back("gcc"); }},
    {"seed", [](SmpConfig &c) { c.seed += 1; }},
    {"warmupInstructions",
     [](SmpConfig &c) { c.warmupInstructions += 1; }},
    {"measureInstructions",
     [](SmpConfig &c) { c.measureInstructions += 1; }},
    {"core block", [](SmpConfig &c) { c.core.fetchWidth += 1; }},
    {"l2 block", [](SmpConfig &c) { c.l2.sizeBytes *= 2; }},
    {"mem block", [](SmpConfig &c) { c.mem.dramLatency += 1; }},
    {"hash block", [](SmpConfig &c) { c.hash.latency += 1; }},
};

TEST(SmpConfigFingerprint, StableForEqualConfigs)
{
    const SmpConfig a, b;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));
}

TEST(SmpConfigFingerprint, EveryFieldChangesTheKey)
{
    const SmpConfig base;
    const std::uint64_t ref = configFingerprint(base);
    for (const NamedSmpMutator &m : kSmpMutators) {
        SmpConfig mutated = base;
        m.mutate(mutated);
        EXPECT_NE(configFingerprint(mutated), ref)
            << "SMP fingerprint ignores field " << m.field;
    }
}

TEST(SmpConfigFingerprint, DistinctFieldFlipsGetDistinctKeys)
{
    const SmpConfig base;
    std::vector<std::uint64_t> keys;
    for (const NamedSmpMutator &m : kSmpMutators) {
        SmpConfig mutated = base;
        m.mutate(mutated);
        keys.push_back(configFingerprint(mutated));
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        for (std::size_t j = i + 1; j < keys.size(); ++j) {
            EXPECT_NE(keys[i], keys[j])
                << kSmpMutators[i].field << " collides with "
                << kSmpMutators[j].field;
        }
    }
}

TEST(SmpConfigFingerprint, NeverAliasesSystemConfig)
{
    // Make the two config types agree on every shared field; the
    // domain tag must still keep their keys apart, or a persistent
    // memo cache could serve a single-core row for an SMP mix.
    SystemConfig single;
    SmpConfig smp;
    smp.benchmarks = {single.benchmark};
    smp.seed = single.seed;
    smp.warmupInstructions = single.warmupInstructions;
    smp.measureInstructions = single.measureInstructions;
    smp.core = single.core;
    smp.l2 = single.l2;
    smp.mem = single.mem;
    smp.hash = single.hash;
    EXPECT_NE(configFingerprint(single), configFingerprint(smp));
}

// ---------------------------------------------------------------------
// Explicit job fingerprints: custom-thunk jobs normally execute
// unconditionally, but an explicit key opts them back into in-sweep
// memoization.
// ---------------------------------------------------------------------

TEST(SweepRunner, ExplicitFingerprintMemoizesThunkJobs)
{
    auto calls = std::make_shared<std::atomic<int>>(0);
    SweepRunner::Options opt;
    opt.jobs = 1;
    SweepRunner runner(std::move(opt));

    const auto thunk = [calls](const SystemConfig &cfg) {
        calls->fetch_add(1);
        SimResult r;
        r.benchmark = cfg.benchmark;
        r.ipc = 1.5;
        return r;
    };
    SweepJob a;
    a.label = "mix-a";
    a.config = tinyConfig("gcc", Scheme::kBase);
    a.simulate = thunk;
    a.fingerprint = 0xfeedULL;
    SweepJob b = a;
    b.label = "mix-b";
    runner.add(std::move(a));
    runner.add(std::move(b));

    EXPECT_EQ(runner.uniqueJobs(), 1u);
    runner.run();
    EXPECT_EQ(calls->load(), 1);
    EXPECT_FALSE(runner.entry(0).memoized);
    EXPECT_TRUE(runner.entry(1).memoized);
    expectSameResult(runner.entry(0).result, runner.entry(1).result);
}

TEST(SweepRunner, DistinctExplicitFingerprintsDoNotMemoize)
{
    auto calls = std::make_shared<std::atomic<int>>(0);
    SweepRunner::Options opt;
    opt.jobs = 1;
    SweepRunner runner(std::move(opt));

    const auto thunk = [calls](const SystemConfig &cfg) {
        calls->fetch_add(1);
        SimResult r;
        r.benchmark = cfg.benchmark;
        r.ipc = 1.5;
        return r;
    };
    SweepJob a;
    a.label = "mix-a";
    a.config = tinyConfig("gcc", Scheme::kBase);
    a.simulate = thunk;
    a.fingerprint = 0xfeedULL;
    SweepJob b = a;
    b.label = "mix-b";
    b.fingerprint = 0xbeefULL;
    runner.add(std::move(a));
    runner.add(std::move(b));

    EXPECT_EQ(runner.uniqueJobs(), 2u);
    runner.run();
    EXPECT_EQ(calls->load(), 2);
    EXPECT_FALSE(runner.entry(1).memoized);
}

// The strict worker-count parser behind --jobs/--workers/--clients:
// out-of-range values must fail instead of wrapping through ERANGE
// into an absurd thread count.
TEST(ParseWorkerCount, AcceptsPlainCounts)
{
    unsigned n = 77;
    EXPECT_TRUE(parseWorkerCount("0", &n));
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(parseWorkerCount("12", &n));
    EXPECT_EQ(n, 12u);
    EXPECT_TRUE(parseWorkerCount("1000000", &n));
    EXPECT_EQ(n, 1'000'000u);
}

TEST(ParseWorkerCount, RejectsGarbageAndLeavesOutputUntouched)
{
    unsigned n = 42;
    EXPECT_FALSE(parseWorkerCount("", &n));
    EXPECT_FALSE(parseWorkerCount("12x", &n));
    EXPECT_FALSE(parseWorkerCount("x12", &n));
    EXPECT_FALSE(parseWorkerCount("1 2", &n));
    EXPECT_FALSE(parseWorkerCount("-4", &n));
    EXPECT_FALSE(parseWorkerCount("0x10", &n));
    EXPECT_EQ(n, 42u);
}

TEST(ParseWorkerCount, RejectsOverflowInsteadOfWrapping)
{
    unsigned n = 42;
    // ERANGE saturation: strtoul returns ULONG_MAX and the old code
    // truncated it into a "valid" unsigned. Must fail instead.
    EXPECT_FALSE(parseWorkerCount("99999999999999999999", &n));
    // In-range for unsigned long but an absurd worker count.
    EXPECT_FALSE(parseWorkerCount("1000001", &n));
    EXPECT_FALSE(parseWorkerCount("4294967296", &n));
    EXPECT_EQ(n, 42u);
}

} // namespace
} // namespace cmt
