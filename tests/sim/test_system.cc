/**
 * @file
 * Whole-system integration tests: the trace-driven core, caches,
 * integrity machinery, bus and DRAM assembled exactly as the bench
 * harnesses use them.
 */

#include <gtest/gtest.h>

#include "sim/smp.h"
#include "sim/system.h"
#include "trace/specgen.h"

namespace cmt
{
namespace
{

SystemConfig
quickConfig(const std::string &bench, Scheme scheme)
{
    SystemConfig cfg;
    cfg.benchmark = bench;
    cfg.warmupInstructions = 60'000;
    cfg.measureInstructions = 150'000;
    cfg.l2.scheme = scheme;
    return cfg;
}

TEST(SystemTest, RunsToCompletionAndReportsSaneIpc)
{
    const SimResult r = simulate(quickConfig("gzip", Scheme::kBase));
    // Commit width 4: the run may overshoot by up to 3 instructions.
    EXPECT_GE(r.instructions, 150'000u);
    EXPECT_LE(r.instructions, 150'003u);
    EXPECT_GT(r.ipc, 0.2);
    EXPECT_LE(r.ipc, 4.0);
    EXPECT_EQ(r.integrityFailures, 0u);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    const SimResult a = simulate(quickConfig("twolf", Scheme::kCached));
    const SimResult b = simulate(quickConfig("twolf", Scheme::kCached));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(SystemTest, SeedChangesTheRun)
{
    SystemConfig cfg = quickConfig("twolf", Scheme::kBase);
    const SimResult a = simulate(cfg);
    cfg.seed = 99;
    const SimResult b = simulate(cfg);
    EXPECT_NE(a.cycles, b.cycles);
}

class SystemSchemes : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(SystemSchemes, CleanRunHasNoIntegrityFailures)
{
    const SimResult r = simulate(quickConfig("vpr", GetParam()));
    EXPECT_EQ(r.integrityFailures, 0u);
    EXPECT_GT(r.ipc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SystemSchemes,
    ::testing::Values(Scheme::kBase, Scheme::kNaive, Scheme::kCached,
                      Scheme::kIncremental),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        return schemeName(info.param);
    });

TEST(SystemTest, SchemeOrderingMatchesThePaper)
{
    // The paper's headline: base >= cached >> naive for memory-bound
    // workloads.
    const SimResult base = simulate(quickConfig("swim", Scheme::kBase));
    const SimResult c = simulate(quickConfig("swim", Scheme::kCached));
    const SimResult naive =
        simulate(quickConfig("swim", Scheme::kNaive));

    EXPECT_GT(base.ipc, c.ipc);
    EXPECT_GT(c.ipc, 2.0 * naive.ipc)
        << "caching the hashes must matter enormously for swim";
    EXPECT_GT(base.ipc / naive.ipc, 4.0)
        << "naive must be several times slower on a streaming "
           "benchmark";
}

TEST(SystemTest, CachedKeepsExtraReadsPerMissLow)
{
    // Figure 5a: with hash caching, well under ~2 additional reads
    // per miss; without, about the tree depth.
    const SimResult c = simulate(quickConfig("swim", Scheme::kCached));
    const SimResult naive =
        simulate(quickConfig("swim", Scheme::kNaive));
    EXPECT_LT(c.extraReadsPerMiss, 2.0);
    EXPECT_GT(naive.extraReadsPerMiss, 4.0);
}

TEST(SystemTest, TamperDuringRunIsDetected)
{
    // Corrupt protected RAM mid-run; the background checks must
    // flag it (and the run must not crash).
    SystemConfig cfg = quickConfig("twolf", Scheme::kCached);
    System sys(cfg);

    // Warm up a little, then tamper with a random data chunk that the
    // hot window keeps touching, then continue.
    // We drive the loop manually to inject mid-run.
    auto &events = sys.events();
    Cycle cycle = 0;
    while (sys.core().committed() < 50'000) {
        events.runUntil(cycle);
        sys.core().tick();
        ++cycle;
    }
    // Flip bits across a swath of the random region's RAM.
    const auto &layout = sys.l2().layout();
    for (std::uint64_t addr = 64ULL << 20;
         addr < (64ULL << 20) + (256 << 10); addr += 4096) {
        std::uint8_t b;
        sys.ram().read(layout.dataToRam(addr), {&b, 1});
        b ^= 0xff;
        sys.ram().write(layout.dataToRam(addr), {&b, 1});
    }
    while (sys.core().committed() < 300'000) {
        events.runUntil(cycle);
        sys.core().tick();
        ++cycle;
    }
    EXPECT_GT(sys.l2().integrityFailures(), 0u);
}

TEST(SystemTest, BaseSchemeCannotDetectTamper)
{
    SystemConfig cfg = quickConfig("twolf", Scheme::kBase);
    System sys(cfg);
    auto &events = sys.events();
    Cycle cycle = 0;
    while (sys.core().committed() < 50'000) {
        events.runUntil(cycle);
        sys.core().tick();
        ++cycle;
    }
    const auto &layout = sys.l2().layout();
    for (std::uint64_t addr = 64ULL << 20;
         addr < (64ULL << 20) + (64 << 10); addr += 4096) {
        std::uint8_t b;
        sys.ram().read(layout.dataToRam(addr), {&b, 1});
        b ^= 0xff;
        sys.ram().write(layout.dataToRam(addr), {&b, 1});
    }
    while (sys.core().committed() < 200'000) {
        events.runUntil(cycle);
        sys.core().tick();
        ++cycle;
    }
    EXPECT_EQ(sys.l2().integrityFailures(), 0u);
}

TEST(SystemTest, TreeStateConsistentAfterRun)
{
    for (Scheme scheme :
         {Scheme::kNaive, Scheme::kCached, Scheme::kIncremental}) {
        SystemConfig cfg = quickConfig("vortex", scheme);
        System sys(cfg);
        (void)sys.run();
        sys.l2().flushAllDirty();
        while (!sys.events().empty())
            sys.events().runUntil(sys.events().nextEventTime());
        EXPECT_TRUE(sys.l2().verifyTreeConsistency())
            << schemeName(scheme);
    }
}

TEST(SystemTest, ConfigTablePrints)
{
    SystemConfig cfg;
    std::ostringstream os;
    printConfigTable(os, cfg);
    const std::string out = os.str();
    EXPECT_NE(out.find("L2 cache"), std::string::npos);
    EXPECT_NE(out.find("hash unit"), std::string::npos);
}

TEST(SpecGenTest, AllBenchmarksProduceValidStreams)
{
    for (const auto &name : specBenchmarks()) {
        SpecGen gen(profileFor(name), 3);
        std::uint64_t loads = 0, stores = 0, branches = 0;
        TraceInstr instr;
        for (int i = 0; i < 50'000; ++i) {
            ASSERT_TRUE(gen.next(instr));
            loads += instr.type == InstrType::kLoad;
            stores += instr.type == InstrType::kStore;
            branches += instr.type == InstrType::kBranch;
            if (instr.type == InstrType::kLoad ||
                instr.type == InstrType::kStore) {
                EXPECT_EQ(instr.addr % 8, 0u) << name;
                EXPECT_LT(instr.addr, 4ULL << 30) << name;
            }
        }
        const auto profile = profileFor(name);
        EXPECT_NEAR(loads / 50'000.0, profile.fracLoad, 0.02) << name;
        EXPECT_NEAR(stores / 50'000.0, profile.fracStore, 0.02) << name;
        EXPECT_NEAR(branches / 50'000.0, profile.fracBranch, 0.02)
            << name;
    }
}

TEST(SpecGenTest, DeterministicPerSeed)
{
    SpecGen a(profileFor("mcf"), 7), b(profileFor("mcf"), 7);
    TraceInstr ia, ib;
    for (int i = 0; i < 10'000; ++i) {
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia.addr, ib.addr);
        ASSERT_EQ(static_cast<int>(ia.type), static_cast<int>(ib.type));
    }
}

TEST(SystemTest, Sha1TruncatedAuthenticatorWorks)
{
    // Section 6.2's alternative digest: truncated SHA-1 tree slots.
    SystemConfig cfg = quickConfig("twolf", Scheme::kCached);
    cfg.l2.authKind = Authenticator::Kind::kSha1Trunc;
    System sys(cfg);
    const SimResult r = sys.run();
    EXPECT_EQ(r.integrityFailures, 0u);
    sys.l2().flushAllDirty();
    while (!sys.events().empty())
        sys.events().runUntil(sys.events().nextEventTime());
    EXPECT_TRUE(sys.l2().verifyTreeConsistency());
}

TEST(SystemTest, PrivacyExtensionEndToEnd)
{
    SystemConfig plain = quickConfig("vortex", Scheme::kCached);
    SystemConfig enc = plain;
    enc.l2.encryptData = true;
    const SimResult a = simulate(plain);
    const SimResult b = simulate(enc);
    EXPECT_LT(b.ipc, a.ipc) << "decrypt latency must cost something";
    EXPECT_GT(b.ipc, a.ipc * 0.5) << "...but not the world";
    EXPECT_EQ(b.integrityFailures, 0u);
}

TEST(OffsetTraceTest, DisplacesAddressesAndPcsOnly)
{
    auto inner = std::make_unique<SpecGen>(profileFor("gzip"), 3);
    SpecGen reference(profileFor("gzip"), 3);
    OffsetTrace shifted(std::move(inner), 1ULL << 32);
    TraceInstr a, b;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(shifted.next(a));
        ASSERT_TRUE(reference.next(b));
        EXPECT_EQ(a.pc, b.pc + (1ULL << 32));
        if (b.type == InstrType::kLoad || b.type == InstrType::kStore)
            EXPECT_EQ(a.addr, b.addr + (1ULL << 32));
        else
            EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.storeValue, b.storeValue);
        EXPECT_EQ(a.taken, b.taken);
    }
}

TEST(SpecGenTest, ChaseLoadsCarryChainDependences)
{
    SpecGen gen(profileFor("mcf"), 5);
    TraceInstr instr;
    int chase_deps = 0, loads = 0;
    for (int i = 0; i < 50'000; ++i) {
        gen.next(instr);
        if (instr.type == InstrType::kLoad) {
            ++loads;
            if (instr.addr >= (1ULL << 30) && instr.addr < (2ULL << 30))
                chase_deps += instr.srcDist[0] != 0;
        }
    }
    EXPECT_GT(chase_deps, loads / 10)
        << "mcf must have a meaningful serialised chase";
}

} // namespace
} // namespace cmt
