/** @file Multiprogrammed-SMP extension tests. */

#include <gtest/gtest.h>

#include "sim/smp.h"

namespace cmt
{
namespace
{

SmpConfig
quickConfig(std::vector<std::string> benchmarks, Scheme scheme)
{
    SmpConfig cfg;
    cfg.benchmarks = std::move(benchmarks);
    cfg.warmupInstructions = 30'000;
    cfg.measureInstructions = 80'000;
    cfg.l2.scheme = scheme;
    return cfg;
}

TEST(SmpTest, TwoCoresRunCleanly)
{
    SmpSystem smp(quickConfig({"gzip", "twolf"}, Scheme::kCached));
    const SmpResult r = smp.run();
    ASSERT_EQ(r.perCore.size(), 2u);
    EXPECT_GE(r.perCore[0].instructions, 80'000u);
    EXPECT_GE(r.perCore[1].instructions, 80'000u);
    EXPECT_EQ(r.integrityFailures, 0u);
    EXPECT_GT(r.aggregateIpc, 0.0);
}

TEST(SmpTest, Deterministic)
{
    const SmpResult a =
        SmpSystem(quickConfig({"gcc", "vpr"}, Scheme::kCached)).run();
    const SmpResult b =
        SmpSystem(quickConfig({"gcc", "vpr"}, Scheme::kCached)).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.aggregateIpc, b.aggregateIpc);
}

TEST(SmpTest, SharedMachineSlowsEachProgram)
{
    // A program running alongside a bandwidth hog must be slower than
    // running alone on the same machine.
    SmpConfig solo = quickConfig({"twolf"}, Scheme::kCached);
    SmpConfig pair = quickConfig({"twolf", "swim"}, Scheme::kCached);
    const SmpResult alone = SmpSystem(solo).run();
    const SmpResult shared = SmpSystem(pair).run();
    EXPECT_LT(shared.perCore[0].ipc, alone.perCore[0].ipc)
        << "bus/hash contention must be visible";
}

TEST(SmpTest, FourCoreTreeStaysConsistent)
{
    SmpSystem smp(quickConfig({"gzip", "twolf", "vpr", "gcc"},
                              Scheme::kCached));
    (void)smp.run();
    smp.l2().flushAllDirty();
    while (!smp.events().empty())
        smp.events().runUntil(smp.events().nextEventTime());
    EXPECT_EQ(smp.l2().integrityFailures(), 0u);
    EXPECT_TRUE(smp.l2().verifyTreeConsistency());
}

TEST(SmpTest, TamperInOneSliceDetected)
{
    SmpConfig cfg = quickConfig({"twolf", "vpr"}, Scheme::kCached);
    SmpSystem smp(cfg);
    auto &events = smp.events();
    Cycle cycle = 0;
    auto run_to = [&](std::uint64_t per_core) {
        while (smp.core(0).committed() < per_core ||
               smp.core(1).committed() < per_core) {
            events.runUntil(cycle);
            smp.core(0).tick();
            smp.core(1).tick();
            ++cycle;
        }
    };
    run_to(30'000);
    // Corrupt core 1's slice (second 4 GB) in its hot random region.
    const auto &layout = smp.l2().layout();
    for (std::uint64_t a = 0; a < (128 << 10); a += 2048) {
        std::uint8_t poison[8] = {0xBA, 0xD0};
        smp.ram().write(
            layout.dataToRam(SmpSystem::sliceOffset(1) +
                             (64ULL << 20) + a),
            poison);
    }
    run_to(200'000);
    EXPECT_GT(smp.l2().integrityFailures(), 0u);
}

} // namespace
} // namespace cmt
