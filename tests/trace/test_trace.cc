/** @file Trace-file round-trip and generator-behaviour tests. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/specgen.h"
#include "trace/trace_file.h"

namespace cmt
{
namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cmt_trace_" + tag +
           ".cmtt";
}

TEST(TraceFileTest, RoundTripPreservesEveryField)
{
    const std::string path = tempPath("roundtrip");
    SpecGen gen(profileFor("mcf"), 11);

    std::vector<TraceInstr> original(5000);
    {
        TraceWriter writer(path);
        for (auto &instr : original) {
            gen.next(instr);
            writer.append(instr);
        }
        EXPECT_EQ(writer.written(), original.size());
    }

    FileTrace replay(path);
    TraceInstr got;
    for (const auto &want : original) {
        ASSERT_TRUE(replay.next(got));
        EXPECT_EQ(static_cast<int>(got.type),
                  static_cast<int>(want.type));
        EXPECT_EQ(got.srcDist[0], want.srcDist[0]);
        EXPECT_EQ(got.srcDist[1], want.srcDist[1]);
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.storeValue, want.storeValue);
        EXPECT_EQ(got.taken, want.taken);
    }
    EXPECT_FALSE(replay.next(got)) << "exactly the written records";
    std::remove(path.c_str());
}

TEST(TraceFileTest, EmptyTraceEndsImmediately)
{
    const std::string path = tempPath("empty");
    { TraceWriter writer(path); }
    FileTrace replay(path);
    TraceInstr instr;
    EXPECT_FALSE(replay.next(instr));
    std::remove(path.c_str());
}

// Regression: the header's version field is exactly 4 bytes on disk.
// It was once encoded with the 8-byte helper, overflowing the stack
// buffer by 4 bytes (UBSan object-size finding); pin the byte-exact
// header so any future encoding slip fails without a sanitizer.
TEST(TraceFileTest, HeaderIsExactlyMagicPlus32BitVersion)
{
    const std::string path = tempPath("header");
    { TraceWriter writer(path); }

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::uint8_t header[9] = {};
    const std::size_t n = std::fread(header, 1, sizeof(header), f);
    std::fclose(f);
    std::remove(path.c_str());

    ASSERT_EQ(n, 8u) << "empty trace must be exactly an 8-byte header";
    EXPECT_EQ(header[0], 'C');
    EXPECT_EQ(header[1], 'M');
    EXPECT_EQ(header[2], 'T');
    EXPECT_EQ(header[3], 'T');
    // Version 1, little-endian u32.
    EXPECT_EQ(header[4], 1u);
    EXPECT_EQ(header[5], 0u);
    EXPECT_EQ(header[6], 0u);
    EXPECT_EQ(header[7], 0u);
}

TEST(SpecGenBehaviour, BranchPcsHaveStableBiases)
{
    // The same static branch must lean the same way across visits -
    // this is what makes the 2-bit counters effective.
    SpecGen gen(profileFor("gzip"), 5);
    std::map<std::uint64_t, std::pair<int, int>> outcomes; // taken/total
    TraceInstr instr;
    for (int i = 0; i < 300'000; ++i) {
        gen.next(instr);
        if (instr.type == InstrType::kBranch) {
            auto &o = outcomes[instr.pc];
            o.first += instr.taken;
            o.second += 1;
        }
    }
    int biased = 0, popular = 0;
    for (const auto &[pc, o] : outcomes) {
        if (o.second < 50)
            continue;
        ++popular;
        const double rate = static_cast<double>(o.first) / o.second;
        biased += (rate < 0.25 || rate > 0.75);
    }
    ASSERT_GT(popular, 10);
    EXPECT_GT(static_cast<double>(biased) / popular, 0.7)
        << "most hot branches should be strongly biased";
}

TEST(SpecGenBehaviour, PcStreamReusesLoopBodies)
{
    // Loop back-edges must revisit identical PCs, giving the I-cache
    // and predictor something to hold on to.
    SpecGen gen(profileFor("twolf"), 9);
    std::map<std::uint64_t, int> visits;
    TraceInstr instr;
    for (int i = 0; i < 100'000; ++i) {
        gen.next(instr);
        ++visits[instr.pc];
    }
    std::uint64_t hot_visits = 0;
    for (const auto &[pc, n] : visits) {
        if (n >= 16)
            hot_visits += n;
    }
    EXPECT_GT(hot_visits, 100'000u / 2)
        << "at least half of fetches should hit well-reused PCs";
}

TEST(SpecGenBehaviour, StreamsAreSequential)
{
    SpecGen gen(profileFor("swim"), 3);
    TraceInstr instr;
    std::map<std::uint64_t, std::uint64_t> last_by_region;
    int sequential = 0, stream_accesses = 0;
    for (int i = 0; i < 200'000; ++i) {
        gen.next(instr);
        if (instr.type != InstrType::kLoad &&
            instr.type != InstrType::kStore)
            continue;
        if (instr.addr < (2ULL << 30))
            continue; // not the stream region
        const std::uint64_t region = instr.addr >> 24;
        auto it = last_by_region.find(region);
        if (it != last_by_region.end()) {
            ++stream_accesses;
            sequential += (instr.addr == it->second + 8);
        }
        last_by_region[region] = instr.addr;
    }
    ASSERT_GT(stream_accesses, 1000);
    EXPECT_GT(static_cast<double>(sequential) / stream_accesses, 0.8)
        << "stream regions must be walked sequentially";
}

} // namespace
} // namespace cmt
