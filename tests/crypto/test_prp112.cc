/** @file 112-bit Feistel PRP unit and property tests. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/prp112.h"
#include "support/random.h"

namespace cmt
{
namespace
{

Key128
keyOf(std::uint8_t fill)
{
    Key128 k;
    k.fill(fill);
    return k;
}

Val112
randomVal(Rng &rng)
{
    Val112 v;
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.next());
    return v;
}

TEST(Prp112Test, DecryptInvertsEncrypt)
{
    const Prp112 prp(keyOf(0x11));
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        const Val112 x = randomVal(rng);
        EXPECT_EQ(prp.decrypt(prp.encrypt(x)), x);
        EXPECT_EQ(prp.encrypt(prp.decrypt(x)), x);
    }
}

TEST(Prp112Test, EncryptActuallyPermutes)
{
    const Prp112 prp(keyOf(0x22));
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const Val112 x = randomVal(rng);
        EXPECT_NE(prp.encrypt(x), x) << "fixed point is wildly unlikely";
    }
}

TEST(Prp112Test, Deterministic)
{
    const Prp112 a(keyOf(0x33)), b(keyOf(0x33));
    const Val112 x{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
    EXPECT_EQ(a.encrypt(x), b.encrypt(x));
}

TEST(Prp112Test, KeySeparation)
{
    const Prp112 a(keyOf(0x44)), b(keyOf(0x45));
    const Val112 x{};
    EXPECT_NE(a.encrypt(x), b.encrypt(x));
}

TEST(Prp112Test, NoCollisionsOnDistinctInputs)
{
    // Injectivity spot check: distinct inputs map to distinct outputs.
    const Prp112 prp(keyOf(0x55));
    Rng rng(4);
    std::set<Val112> outputs;
    std::set<Val112> inputs;
    for (int i = 0; i < 2000; ++i) {
        const Val112 x = randomVal(rng);
        if (!inputs.insert(x).second)
            continue;
        EXPECT_TRUE(outputs.insert(prp.encrypt(x)).second);
    }
}

TEST(Prp112Test, AvalancheOnSingleBitFlip)
{
    const Prp112 prp(keyOf(0x66));
    const Val112 x{};
    const Val112 base = prp.encrypt(x);
    for (unsigned bit = 0; bit < 112; bit += 13) {
        Val112 flipped = x;
        flipped[bit / 8] ^= 1u << (bit % 8);
        const Val112 out = prp.encrypt(flipped);
        int differing = 0;
        for (std::size_t i = 0; i < out.size(); ++i) {
            std::uint8_t diff = out[i] ^ base[i];
            while (diff) {
                differing += diff & 1;
                diff >>= 1;
            }
        }
        // A random permutation flips ~56 bits; demand a healthy spread.
        EXPECT_GT(differing, 20) << "bit " << bit;
    }
}

} // namespace
} // namespace cmt
