/** @file SHA-1 against the FIPS 180-1 / RFC 3174 test vectors. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/sha1.h"
#include "support/hex.h"

namespace cmt
{
namespace
{

std::string
sha1Hex(const std::string &msg)
{
    const auto d = Sha1::digest(
        {reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size()});
    return toHex(d);
}

TEST(Sha1Test, FipsVectorAbc)
{
    EXPECT_EQ(sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, FipsVectorTwoBlocks)
{
    EXPECT_EQ(
        sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, EmptyMessage)
{
    EXPECT_EQ(sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, MillionAs)
{
    Sha1 ctx;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        ctx.update({reinterpret_cast<const std::uint8_t *>(chunk.data()),
                    chunk.size()});
    }
    EXPECT_EQ(toHex(ctx.finish()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalEqualsOneShot)
{
    const std::string msg(333, 'q');
    const auto span = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size());
    const Hash160 oneshot = Sha1::digest(span);
    for (std::size_t piece : {1u, 7u, 64u, 100u}) {
        Sha1 ctx;
        std::size_t pos = 0;
        while (pos < msg.size()) {
            const std::size_t take = std::min(piece, msg.size() - pos);
            ctx.update(span.subspan(pos, take));
            pos += take;
        }
        EXPECT_EQ(ctx.finish(), oneshot) << "piece " << piece;
    }
}

TEST(Sha1Test, PaddingBoundaries)
{
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
        std::vector<std::uint8_t> msg(len, 'z');
        Sha1 a, b;
        a.update(msg);
        b.update(std::span<const std::uint8_t>(msg).first(len / 2));
        b.update(std::span<const std::uint8_t>(msg).subspan(len / 2));
        EXPECT_EQ(a.finish(), b.finish()) << "len " << len;
    }
}

} // namespace
} // namespace cmt
