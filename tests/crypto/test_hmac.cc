/** @file HMAC-MD5 against RFC 2202 test vectors. */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/hmac.h"
#include "support/hex.h"

namespace cmt
{
namespace
{

TEST(HmacTest, Rfc2202Case1)
{
    Key128 key;
    key.fill(0x0b);
    const std::string msg = "Hi There";
    const auto mac = hmacMd5(
        key,
        {reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size()});
    EXPECT_EQ(toHex(mac), "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacTest, Rfc2202Case3)
{
    Key128 key;
    key.fill(0xaa);
    std::vector<std::uint8_t> msg(50, 0xdd);
    const auto mac = hmacMd5(key, msg);
    EXPECT_EQ(toHex(mac), "56be34521d144c88dbb8c733f0e8b3f6");
}

TEST(HmacTest, KeySensitivity)
{
    Key128 k1{}, k2{};
    k2[15] = 1;
    const std::uint8_t msg[] = {1, 2, 3};
    EXPECT_NE(hmacMd5(k1, msg), hmacMd5(k2, msg));
}

TEST(HmacTest, MessageSensitivity)
{
    Key128 key{};
    const std::uint8_t m1[] = {1, 2, 3};
    const std::uint8_t m2[] = {1, 2, 4};
    EXPECT_NE(hmacMd5(key, m1), hmacMd5(key, m2));
}

TEST(HmacTest, DeriveKeyIsDeterministicAndContextSeparated)
{
    Key128 master;
    master.fill(0x42);
    const std::uint8_t ctx_a[] = {'p', 'r', 'o', 'g', 'A'};
    const std::uint8_t ctx_b[] = {'p', 'r', 'o', 'g', 'B'};
    const Key128 ka1 = deriveKey(master, ctx_a);
    const Key128 ka2 = deriveKey(master, ctx_a);
    const Key128 kb = deriveKey(master, ctx_b);
    EXPECT_EQ(ka1, ka2);
    EXPECT_NE(ka1, kb);
    EXPECT_NE(ka1, master) << "derived key must not equal the master";
}

} // namespace
} // namespace cmt
