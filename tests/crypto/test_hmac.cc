/** @file HMAC-MD5 against RFC 2202 test vectors. */

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "support/hex.h"

namespace cmt
{
namespace
{

TEST(HmacTest, Rfc2202Case1)
{
    Key128 key;
    key.fill(0x0b);
    const std::string msg = "Hi There";
    const auto mac = hmacMd5(
        key,
        {reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size()});
    EXPECT_EQ(toHex(mac), "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacTest, Rfc2202Case3)
{
    Key128 key;
    key.fill(0xaa);
    std::vector<std::uint8_t> msg(50, 0xdd);
    const auto mac = hmacMd5(key, msg);
    EXPECT_EQ(toHex(mac), "56be34521d144c88dbb8c733f0e8b3f6");
}

TEST(HmacTest, KeySensitivity)
{
    Key128 k1{}, k2{};
    k2[15] = 1;
    const std::uint8_t msg[] = {1, 2, 3};
    EXPECT_NE(hmacMd5(k1, msg), hmacMd5(k2, msg));
}

TEST(HmacTest, MessageSensitivity)
{
    Key128 key{};
    const std::uint8_t m1[] = {1, 2, 3};
    const std::uint8_t m2[] = {1, 2, 4};
    EXPECT_NE(hmacMd5(key, m1), hmacMd5(key, m2));
}

TEST(HmacTest, KeyedEngineMatchesFreeFunction)
{
    // HmacMd5 precomputes the pad-block states; results must be
    // bit-identical to the reference free function for every length
    // around the block/padding boundaries.
    Key128 key;
    for (std::size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(i * 17 + 3);
    const HmacMd5 engine(key);
    for (std::size_t len :
         {0u, 1u, 54u, 55u, 56u, 63u, 64u, 65u, 200u}) {
        std::vector<std::uint8_t> msg(len);
        for (std::size_t i = 0; i < len; ++i)
            msg[i] = static_cast<std::uint8_t>(i);
        EXPECT_EQ(engine.mac(msg), hmacMd5(key, msg)) << "len " << len;
    }
}

TEST(HmacTest, Mac2MatchesConcatenation)
{
    Key128 key;
    key.fill(0x5a);
    const HmacMd5 engine(key);
    const std::uint8_t header[2] = {7, 1};
    std::vector<std::uint8_t> block(64);
    for (std::size_t i = 0; i < block.size(); ++i)
        block[i] = static_cast<std::uint8_t>(255 - i);

    std::vector<std::uint8_t> concat(header, header + 2);
    concat.insert(concat.end(), block.begin(), block.end());
    EXPECT_EQ(engine.mac2({header, 2}, block), hmacMd5(key, concat));
}

TEST(HmacTest, MacChainMatchesPerMessageMacs)
{
    Key128 key;
    key.fill(0xc3);
    const HmacMd5 engine(key);
    // 17 equal-length messages exercise the 16-message batching plus
    // a remainder batch.
    std::vector<std::vector<std::uint8_t>> msgs(17);
    std::vector<std::span<const std::uint8_t>> spans;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        msgs[i].assign(66, static_cast<std::uint8_t>(i));
        spans.push_back(msgs[i]);
    }
    std::vector<Hash128> out(msgs.size());
    engine.macChain(spans, out);
    for (std::size_t i = 0; i < msgs.size(); ++i)
        EXPECT_EQ(out[i], hmacMd5(key, spans[i])) << "i " << i;
}

TEST(HmacTest, DeriveKeyIsDeterministicAndContextSeparated)
{
    Key128 master;
    master.fill(0x42);
    const std::uint8_t ctx_a[] = {'p', 'r', 'o', 'g', 'A'};
    const std::uint8_t ctx_b[] = {'p', 'r', 'o', 'g', 'B'};
    const Key128 ka1 = deriveKey(master, ctx_a);
    const Key128 ka2 = deriveKey(master, ctx_a);
    const Key128 kb = deriveKey(master, ctx_b);
    EXPECT_EQ(ka1, ka2);
    EXPECT_NE(ka1, kb);
    EXPECT_NE(ka1, master) << "derived key must not equal the master";
}

} // namespace
} // namespace cmt
