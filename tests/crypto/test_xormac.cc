/**
 * @file
 * Incremental XOR-MAC tests, including reproductions of the two
 * attacks from Section 5.5 of the paper: both succeed against the
 * timestamp-free variant and are defeated by one-bit timestamps.
 */

#include <gtest/gtest.h>

#include <vector>

#include "crypto/xormac.h"
#include "support/random.h"

namespace cmt
{
namespace
{

constexpr std::size_t kBlock = 64;

Key128
testKey()
{
    Key128 k;
    for (std::size_t i = 0; i < k.size(); ++i)
        k[i] = static_cast<std::uint8_t>(i + 1);
    return k;
}

std::vector<std::uint8_t>
randomChunk(Rng &rng, std::size_t blocks)
{
    std::vector<std::uint8_t> chunk(blocks * kBlock);
    for (auto &b : chunk)
        b = static_cast<std::uint8_t>(rng.next());
    return chunk;
}

TEST(MacSlotTest, StoreLoadRoundTrip)
{
    MacSlot slot;
    for (std::size_t i = 0; i < slot.mac.size(); ++i)
        slot.mac[i] = static_cast<std::uint8_t>(i * 3);
    slot.tsBits = 0xbeef;
    std::uint8_t wire[16];
    slot.store(wire);
    EXPECT_EQ(MacSlot::load(wire), slot);
}

TEST(XorMacTest, FullMacDeterministic)
{
    const XorMac mac(testKey());
    Rng rng(1);
    const auto chunk = randomChunk(rng, 2);
    EXPECT_EQ(mac.mac(chunk, kBlock, 0), mac.mac(chunk, kBlock, 0));
}

TEST(XorMacTest, MacDependsOnContentPositionAndTimestamp)
{
    const XorMac mac(testKey());
    Rng rng(2);
    auto chunk = randomChunk(rng, 2);
    const Val112 base = mac.mac(chunk, kBlock, 0);

    // Content sensitivity.
    chunk[5] ^= 1;
    EXPECT_NE(mac.mac(chunk, kBlock, 0), base);
    chunk[5] ^= 1;

    // Position sensitivity: swapping the two blocks changes the MAC.
    std::vector<std::uint8_t> swapped(chunk.size());
    std::copy(chunk.begin() + kBlock, chunk.end(), swapped.begin());
    std::copy(chunk.begin(), chunk.begin() + kBlock,
              swapped.begin() + kBlock);
    EXPECT_NE(mac.mac(swapped, kBlock, 0), base);

    // Timestamp sensitivity.
    EXPECT_NE(mac.mac(chunk, kBlock, 1), base);
    EXPECT_NE(mac.mac(chunk, kBlock, 2), base);
}

/**
 * The core incremental property: updating block i from old to new
 * yields exactly the MAC of the chunk with block i replaced.
 */
class XorMacUpdateProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(XorMacUpdateProperty, UpdateEqualsRecompute)
{
    const auto [num_blocks, victim] = GetParam();
    if (victim >= num_blocks)
        GTEST_SKIP();

    const XorMac mac(testKey());
    Rng rng(42 + num_blocks * 10 + victim);
    auto chunk = randomChunk(rng, num_blocks);

    std::uint16_t ts = 0;
    const Val112 old_mac = mac.mac(chunk, kBlock, ts);

    std::vector<std::uint8_t> new_block(kBlock);
    for (auto &b : new_block)
        b = static_cast<std::uint8_t>(rng.next());

    const bool old_ts = (ts >> victim) & 1;
    const bool new_ts = !old_ts;
    const Val112 updated = mac.update(
        old_mac, victim,
        std::span<const std::uint8_t>(chunk).subspan(victim * kBlock,
                                                     kBlock),
        old_ts, new_block, new_ts);

    // Recompute from scratch on the modified chunk.
    std::copy(new_block.begin(), new_block.end(),
              chunk.begin() + victim * kBlock);
    const std::uint16_t new_ts_bits = ts ^ (1u << victim);
    EXPECT_EQ(updated, mac.mac(chunk, kBlock, new_ts_bits));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XorMacUpdateProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(0, 1, 3, 7, 15)));

/**
 * Section 5.5, attack 1: the adversary leaves the OLD value d_o in
 * memory while the processor believes it wrote d_n; if the adversary
 * correctly predicts d_n, the h-terms cancel without timestamps.
 *
 * Model: processor writes back d_n (MAC updated from d_o to d_n), but
 * memory still holds d_o. On the next read the processor reads d_o,
 * and later "writes back" what the adversary predicted. Concretely the
 * cancellation appears when the sequence of updates uses the stale
 * read: update(mac, d_o -> d_n) twice ends up matching memory that
 * never changed.
 */
TEST(XorMacAttackTest, StaleValueAttackWithoutTimestamps)
{
    const XorMac broken(testKey(), /*use_timestamps=*/false);
    Rng rng(7);
    auto chunk = randomChunk(rng, 2);
    const auto d_o = std::vector<std::uint8_t>(
        chunk.begin(), chunk.begin() + kBlock);
    std::vector<std::uint8_t> d_n(kBlock);
    for (auto &b : d_n)
        b = static_cast<std::uint8_t>(rng.next());

    // Processor: writes back d_n; MAC now covers (d_n, m_1).
    const Val112 mac0 = broken.mac(chunk, kBlock, 0);
    const Val112 mac1 = broken.update(mac0, 0, d_o, false, d_n, false);

    // Adversary: memory still holds d_o. Processor reads block 0 and
    // gets d_o' = d_o (stale). It dirties the block and writes back
    // the value the adversary predicted: d_n' = d_n. The incremental
    // update the processor performs is update(mac1, d_o' -> d_n').
    const Val112 mac2 = broken.update(mac1, 0, d_o, false, d_n, false);

    // Check passes: the MAC over memory containing d_n... except the
    // memory *still* holds d_o -- yet the MAC the processor holds now
    // corresponds to h(d_n) xor'd in twice and h(d_o) removed twice.
    // With XOR, x ^ x = 0, so mac2 "corrects" back only if the terms
    // cancel; without timestamps they do: verify the *stale* memory
    // (d_o in block 0) against mac2 after one more processor write
    // cycle of the same predicted value.
    const Val112 mac_honest = broken.mac(chunk, kBlock, 0);
    std::vector<std::uint8_t> mem_with_dn = chunk;
    std::copy(d_n.begin(), d_n.end(), mem_with_dn.begin());
    const Val112 mac_dn = broken.mac(mem_with_dn, kBlock, 0);

    // mac1 covers (d_n); mac2 = mac1 with d_o->d_n applied AGAIN,
    // i.e. sum ^ h(d_o) ^ h(d_n) ^ h(d_o) ^ h(d_n) = sum: mac2 must
    // equal the MAC of the ORIGINAL (stale) memory image.
    EXPECT_EQ(mac2, mac_honest)
        << "without timestamps the double-update cancels and the stale "
           "memory verifies";
    // Sanity: the intermediate MAC is exactly a from-scratch MAC of
    // the d_n image (incremental == recompute).
    EXPECT_EQ(mac1, mac_dn);
}

/** The same double-update no longer cancels once timestamps flip. */
TEST(XorMacAttackTest, TimestampsDefeatStaleValueAttack)
{
    const XorMac good(testKey(), /*use_timestamps=*/true);
    Rng rng(8);
    auto chunk = randomChunk(rng, 2);
    const auto d_o = std::vector<std::uint8_t>(
        chunk.begin(), chunk.begin() + kBlock);
    std::vector<std::uint8_t> d_n(kBlock);
    for (auto &b : d_n)
        b = static_cast<std::uint8_t>(rng.next());

    std::uint16_t ts = 0;
    const Val112 mac0 = good.mac(chunk, kBlock, ts);

    // First write-back flips the timestamp bit of block 0.
    const Val112 mac1 = good.update(mac0, 0, d_o, false, d_n, true);
    ts ^= 1;

    // Adversary replays d_o; processor writes back the predicted d_n,
    // flipping the timestamp again.
    const Val112 mac2 = good.update(mac1, 0, d_o, true, d_n, false);
    ts ^= 1;

    // The stale image no longer verifies: h(0, d_o, ts=1) entered the
    // sum where h(0, d_o, ts=0) would have been needed to cancel.
    const Val112 mac_stale = good.mac(chunk, kBlock, ts);
    EXPECT_NE(mac2, mac_stale)
        << "timestamps must break the cancellation";
}

/**
 * Section 5.5, attack 2: if the processor rewrites an UNCHANGED value
 * (d_n == d_o), the adversary can substitute a value of his choosing
 * without timestamps -- the legitimate update is a no-op, so any
 * adversarial pre-tampering survives verification unchanged.
 */
TEST(XorMacAttackTest, UnchangedValueAttackWithoutTimestamps)
{
    const XorMac broken(testKey(), /*use_timestamps=*/false);
    Rng rng(9);
    auto chunk = randomChunk(rng, 2);
    const auto d = std::vector<std::uint8_t>(chunk.begin(),
                                             chunk.begin() + kBlock);

    const Val112 mac0 = broken.mac(chunk, kBlock, 0);
    // Processor rewrites the same value: MAC unchanged (no-op update).
    const Val112 mac1 = broken.update(mac0, 0, d, false, d, false);
    EXPECT_EQ(mac1, mac0)
        << "no-op update leaves the MAC fixed, so whatever the "
           "adversary does between the two writes is never bound";

    // With timestamps, rewriting the same data still changes the MAC.
    const XorMac good(testKey(), /*use_timestamps=*/true);
    const Val112 gmac0 = good.mac(chunk, kBlock, 0);
    const Val112 gmac1 = good.update(gmac0, 0, d, false, d, true);
    EXPECT_NE(gmac1, gmac0);
}

} // namespace
} // namespace cmt
