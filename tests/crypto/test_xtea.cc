/** @file XTEA cipher unit tests. */

#include <gtest/gtest.h>

#include <vector>

#include "crypto/xtea.h"
#include "support/random.h"

namespace cmt
{
namespace
{

Key128
testKey(std::uint8_t fill = 0)
{
    Key128 k;
    for (std::size_t i = 0; i < k.size(); ++i)
        k[i] = static_cast<std::uint8_t>(i * 17 + fill);
    return k;
}

TEST(XteaTest, EncryptDecryptRoundTrip)
{
    const Xtea cipher(testKey());
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t p0 = static_cast<std::uint32_t>(rng.next());
        const std::uint32_t p1 = static_cast<std::uint32_t>(rng.next());
        std::uint32_t v0 = p0, v1 = p1;
        cipher.encryptBlock(v0, v1);
        EXPECT_FALSE(v0 == p0 && v1 == p1);
        cipher.decryptBlock(v0, v1);
        EXPECT_EQ(v0, p0);
        EXPECT_EQ(v1, p1);
    }
}

/**
 * Independent transcription of the Needham-Wheeler reference code
 * (verbatim structure from the 1997 tech report), used to cross-check
 * our implementation on random inputs.
 */
void
referenceXteaEncipher(unsigned num_rounds, std::uint32_t v[2],
                      const std::uint32_t key[4])
{
    std::uint32_t v0 = v[0], v1 = v[1], sum = 0;
    const std::uint32_t delta = 0x9E3779B9u;
    for (unsigned i = 0; i < num_rounds; i++) {
        v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
        sum += delta;
        v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^
              (sum + key[(sum >> 11) & 3]);
    }
    v[0] = v0;
    v[1] = v1;
}

TEST(XteaTest, MatchesReferenceImplementation)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        Key128 key;
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng.next());
        std::uint32_t kwords[4];
        for (int i = 0; i < 4; ++i) {
            kwords[i] = static_cast<std::uint32_t>(key[4 * i]) |
                        (static_cast<std::uint32_t>(key[4 * i + 1]) << 8) |
                        (static_cast<std::uint32_t>(key[4 * i + 2]) << 16) |
                        (static_cast<std::uint32_t>(key[4 * i + 3]) << 24);
        }
        std::uint32_t v[2] = {static_cast<std::uint32_t>(rng.next()),
                              static_cast<std::uint32_t>(rng.next())};
        std::uint32_t mine0 = v[0], mine1 = v[1];
        referenceXteaEncipher(32, v, kwords);
        const Xtea cipher(key);
        cipher.encryptBlock(mine0, mine1);
        EXPECT_EQ(mine0, v[0]);
        EXPECT_EQ(mine1, v[1]);
    }
}

TEST(XteaTest, DifferentKeysDifferentCiphertexts)
{
    const Xtea a(testKey(0)), b(testKey(1));
    std::uint32_t a0 = 1, a1 = 2, b0 = 1, b1 = 2;
    a.encryptBlock(a0, a1);
    b.encryptBlock(b0, b1);
    EXPECT_FALSE(a0 == b0 && a1 == b1);
}

TEST(XteaTest, CtrModeIsAnInvolution)
{
    const Xtea cipher(testKey());
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    const auto original = data;

    cipher.ctrCrypt(0x1234, data);
    EXPECT_NE(data, original);
    cipher.ctrCrypt(0x1234, data);
    EXPECT_EQ(data, original);
}

TEST(XteaTest, CtrModeNonceSeparation)
{
    const Xtea cipher(testKey());
    std::vector<std::uint8_t> a(64, 0), b(64, 0);
    cipher.ctrCrypt(1, a);
    cipher.ctrCrypt(2, b);
    EXPECT_NE(a, b) << "keystreams for different nonces must differ";
}

TEST(XteaTest, CtrModeHandlesNonMultipleOf8)
{
    const Xtea cipher(testKey());
    std::vector<std::uint8_t> data(13, 0xab);
    const auto original = data;
    cipher.ctrCrypt(7, data);
    cipher.ctrCrypt(7, data);
    EXPECT_EQ(data, original);
}

} // namespace
} // namespace cmt
