/** @file MD5 against the RFC 1321 appendix test vectors. */

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "crypto/md5.h"
#include "support/hex.h"
#include "support/random.h"

namespace cmt
{
namespace
{

std::string
md5Hex(const std::string &msg)
{
    const auto d = Md5::digest(
        {reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size()});
    return toHex(d);
}

struct Vector
{
    const char *message;
    const char *digest;
};

// RFC 1321, appendix A.5.
constexpr Vector kRfc1321[] = {
    {"", "d41d8cd98f00b204e9800998ecf8427e"},
    {"a", "0cc175b9c0f1b6a831c399e269772661"},
    {"abc", "900150983cd24fb0d6963f7d28e17f72"},
    {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
    {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
    {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "d174ab98d277d9f5a5611c2c9f419d9f"},
    {"1234567890123456789012345678901234567890123456789012345678901234"
     "5678901234567890",
     "57edf4a22be3c955ac49da2e2107b67a"},
};

class Md5Rfc1321 : public ::testing::TestWithParam<Vector>
{
};

TEST_P(Md5Rfc1321, MatchesReferenceDigest)
{
    EXPECT_EQ(md5Hex(GetParam().message), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(Vectors, Md5Rfc1321,
                         ::testing::ValuesIn(kRfc1321));

TEST(Md5Test, IncrementalEqualsOneShot)
{
    // Feed a message in awkward pieces; digest must match one-shot.
    Rng rng(3);
    std::vector<std::uint8_t> msg(1000);
    for (auto &b : msg)
        b = static_cast<std::uint8_t>(rng.next());

    const Hash128 oneshot = Md5::digest(msg);

    for (std::size_t piece : {1u, 3u, 63u, 64u, 65u, 127u, 999u}) {
        Md5 ctx;
        std::size_t pos = 0;
        while (pos < msg.size()) {
            const std::size_t take = std::min(piece, msg.size() - pos);
            ctx.update({msg.data() + pos, take});
            pos += take;
        }
        EXPECT_EQ(ctx.finish(), oneshot) << "piece size " << piece;
    }
}

TEST(Md5Test, BlockBoundaryLengths)
{
    // Lengths straddling the 64-byte block and 56-byte padding
    // boundaries exercise both padding branches.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u,
                            128u}) {
        std::vector<std::uint8_t> msg(len, 'x');
        const Hash128 a = Md5::digest(msg);
        Md5 ctx;
        ctx.update(msg);
        EXPECT_EQ(ctx.finish(), a) << "len " << len;
    }
}

TEST(Md5Test, ResetAllowsReuse)
{
    Md5 ctx;
    ctx.update({reinterpret_cast<const std::uint8_t *>("abc"), 3});
    (void)ctx.finish();
    ctx.reset();
    ctx.update({reinterpret_cast<const std::uint8_t *>("abc"), 3});
    EXPECT_EQ(toHex(ctx.finish()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, SingleBitChangesDigest)
{
    std::vector<std::uint8_t> msg(64, 0);
    const Hash128 base = Md5::digest(msg);
    for (int bit = 0; bit < 64 * 8; bit += 37) {
        auto tampered = msg;
        tampered[bit / 8] ^= 1u << (bit % 8);
        EXPECT_NE(Md5::digest(tampered), base) << "bit " << bit;
    }
}

TEST(Md5Test, DigestChainMatchesOneShotEqualLengths)
{
    // Equal-length chains take the interleaved multi-stream path;
    // cover every group shape (4/2/1) and both padding branches.
    Rng rng(7);
    for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 119u,
                            120u, 128u, 256u}) {
        for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 17u}) {
            std::vector<std::vector<std::uint8_t>> msgs(n);
            std::vector<std::span<const std::uint8_t>> spans;
            for (auto &m : msgs) {
                m.resize(len);
                for (auto &b : m)
                    b = static_cast<std::uint8_t>(rng.next());
                spans.push_back(m);
            }
            std::vector<Hash128> out(n);
            Md5::digestChain(spans, out);
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(out[i], Md5::digest(spans[i]))
                    << "len " << len << " n " << n << " i " << i;
        }
    }
}

TEST(Md5Test, DigestChainMatchesOneShotMixedLengths)
{
    // Length changes break the lockstep runs; the chain must still
    // produce per-message one-shot digests.
    Rng rng(11);
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::span<const std::uint8_t>> spans;
    for (std::size_t len :
         {64u, 64u, 64u, 10u, 200u, 200u, 0u, 64u, 57u}) {
        std::vector<std::uint8_t> m(len);
        for (auto &b : m)
            b = static_cast<std::uint8_t>(rng.next());
        msgs.push_back(std::move(m));
    }
    for (const auto &m : msgs)
        spans.push_back(m);
    std::vector<Hash128> out(msgs.size());
    Md5::digestChain(spans, out);
    for (std::size_t i = 0; i < msgs.size(); ++i)
        EXPECT_EQ(out[i], Md5::digest(spans[i])) << "i " << i;
}

TEST(Md5Test, SeededStateResumesAtBlockBoundary)
{
    // seedState(stateWords(), 64) must behave exactly like having
    // absorbed those 64 bytes in the same context.
    Rng rng(13);
    std::vector<std::uint8_t> prefix(64);
    std::vector<std::uint8_t> rest(37);
    for (auto &b : prefix)
        b = static_cast<std::uint8_t>(rng.next());
    for (auto &b : rest)
        b = static_cast<std::uint8_t>(rng.next());

    Md5 whole;
    whole.update(prefix);
    whole.update(rest);
    const Hash128 expected = whole.finish();

    Md5 capture;
    capture.update(prefix);
    const auto words = capture.stateWords();

    Md5 resumed;
    resumed.seedState(words.data(), 64);
    resumed.update(rest);
    EXPECT_EQ(resumed.finish(), expected);

    // And the chain-from-seed variant agrees too.
    const std::span<const std::uint8_t> spans[] = {rest};
    Hash128 out[1];
    Md5::digestChainFrom(words.data(), 64, spans, out);
    EXPECT_EQ(out[0], expected);
}

} // namespace
} // namespace cmt
