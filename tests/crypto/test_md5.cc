/** @file MD5 against the RFC 1321 appendix test vectors. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/md5.h"
#include "support/hex.h"
#include "support/random.h"

namespace cmt
{
namespace
{

std::string
md5Hex(const std::string &msg)
{
    const auto d = Md5::digest(
        {reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size()});
    return toHex(d);
}

struct Vector
{
    const char *message;
    const char *digest;
};

// RFC 1321, appendix A.5.
constexpr Vector kRfc1321[] = {
    {"", "d41d8cd98f00b204e9800998ecf8427e"},
    {"a", "0cc175b9c0f1b6a831c399e269772661"},
    {"abc", "900150983cd24fb0d6963f7d28e17f72"},
    {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
    {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
    {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "d174ab98d277d9f5a5611c2c9f419d9f"},
    {"1234567890123456789012345678901234567890123456789012345678901234"
     "5678901234567890",
     "57edf4a22be3c955ac49da2e2107b67a"},
};

class Md5Rfc1321 : public ::testing::TestWithParam<Vector>
{
};

TEST_P(Md5Rfc1321, MatchesReferenceDigest)
{
    EXPECT_EQ(md5Hex(GetParam().message), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(Vectors, Md5Rfc1321,
                         ::testing::ValuesIn(kRfc1321));

TEST(Md5Test, IncrementalEqualsOneShot)
{
    // Feed a message in awkward pieces; digest must match one-shot.
    Rng rng(3);
    std::vector<std::uint8_t> msg(1000);
    for (auto &b : msg)
        b = static_cast<std::uint8_t>(rng.next());

    const Hash128 oneshot = Md5::digest(msg);

    for (std::size_t piece : {1u, 3u, 63u, 64u, 65u, 127u, 999u}) {
        Md5 ctx;
        std::size_t pos = 0;
        while (pos < msg.size()) {
            const std::size_t take = std::min(piece, msg.size() - pos);
            ctx.update({msg.data() + pos, take});
            pos += take;
        }
        EXPECT_EQ(ctx.finish(), oneshot) << "piece size " << piece;
    }
}

TEST(Md5Test, BlockBoundaryLengths)
{
    // Lengths straddling the 64-byte block and 56-byte padding
    // boundaries exercise both padding branches.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u,
                            128u}) {
        std::vector<std::uint8_t> msg(len, 'x');
        const Hash128 a = Md5::digest(msg);
        Md5 ctx;
        ctx.update(msg);
        EXPECT_EQ(ctx.finish(), a) << "len " << len;
    }
}

TEST(Md5Test, ResetAllowsReuse)
{
    Md5 ctx;
    ctx.update({reinterpret_cast<const std::uint8_t *>("abc"), 3});
    (void)ctx.finish();
    ctx.reset();
    ctx.update({reinterpret_cast<const std::uint8_t *>("abc"), 3});
    EXPECT_EQ(toHex(ctx.finish()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, SingleBitChangesDigest)
{
    std::vector<std::uint8_t> msg(64, 0);
    const Hash128 base = Md5::digest(msg);
    for (int bit = 0; bit < 64 * 8; bit += 37) {
        auto tampered = msg;
        tampered[bit / 8] ^= 1u << (bit % 8);
        EXPECT_NE(Md5::digest(tampered), base) << "bit " << bit;
    }
}

} // namespace
} // namespace cmt
