/** @file Set-associative cache array tests. */

#include <gtest/gtest.h>

#include "cache/cache_array.h"
#include "support/random.h"

namespace cmt
{
namespace
{

CacheParams
smallParams()
{
    CacheParams p;
    p.name = "t";
    p.sizeBytes = 1024; // 4 sets x 4 ways x 64B
    p.assoc = 4;
    p.blockSize = 64;
    return p;
}

TEST(CacheArrayTest, MissThenHit)
{
    CacheArray cache(smallParams());
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    CacheArray::Victim victim;
    auto *line = cache.allocate(0x1000, &victim);
    EXPECT_FALSE(victim.valid);
    line->validWords = cache.fullMask();
    EXPECT_NE(cache.lookup(0x1000), nullptr);
    EXPECT_NE(cache.lookup(0x103f), nullptr) << "same block";
    EXPECT_EQ(cache.lookup(0x1040), nullptr) << "next block";
}

TEST(CacheArrayTest, LruEviction)
{
    CacheArray cache(smallParams());
    // 4 ways in a set: fill with 4 conflicting blocks, touch the
    // first again, allocate a 5th -> the 2nd (now LRU) is evicted.
    const std::uint64_t stride = 4 * 64; // same set
    CacheArray::Victim victim;
    for (int i = 0; i < 4; ++i)
        cache.allocate(i * stride, &victim);
    EXPECT_NE(cache.lookup(0), nullptr); // touch block 0
    cache.allocate(4 * stride, &victim);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.blockAddr, 1u * stride);
    EXPECT_NE(cache.lookup(0), nullptr);
    EXPECT_EQ(cache.lookup(stride), nullptr);
}

TEST(CacheArrayTest, VictimCarriesDataAndMasks)
{
    CacheArray cache(smallParams());
    CacheArray::Victim victim;
    auto *line = cache.allocate(0, &victim);
    line->data[8] = 0xab;
    line->validWords = cache.wordMask(8, 8);
    line->dirty = true;

    const std::uint64_t stride = 4 * 64;
    for (int i = 1; i <= 4; ++i)
        cache.allocate(i * stride, &victim);
    EXPECT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(victim.blockAddr, 0u);
    EXPECT_EQ(victim.validWords, cache.wordMask(8, 8));
    EXPECT_EQ(victim.data[8], 0xab);
}

TEST(CacheArrayTest, WordMasks)
{
    CacheArray cache(smallParams());
    EXPECT_EQ(cache.wordsPerBlock(), 8u);
    EXPECT_EQ(cache.fullMask(), 0xffu);
    EXPECT_EQ(cache.wordMask(0, 8), 0x01u);
    EXPECT_EQ(cache.wordMask(0, 64), 0xffu);
    EXPECT_EQ(cache.wordMask(8, 8), 0x02u);
    EXPECT_EQ(cache.wordMask(56, 8), 0x80u);
    EXPECT_EQ(cache.wordMask(0, 16), 0x03u);
    EXPECT_EQ(cache.wordMask(4, 8), 0x03u) << "straddles two words";
}

TEST(CacheArrayTest, InvalidateDropsBlock)
{
    CacheArray cache(smallParams());
    CacheArray::Victim victim;
    cache.allocate(0x2000, &victim);
    EXPECT_NE(cache.lookup(0x2000, false), nullptr);
    cache.invalidate(0x2000);
    EXPECT_EQ(cache.lookup(0x2000, false), nullptr);
    cache.invalidate(0x3000); // no-op on absent block
}

TEST(CacheArrayTest, TagsOnlyModeHasNoData)
{
    CacheParams p = smallParams();
    p.storesData = false;
    CacheArray cache(p);
    CacheArray::Victim victim;
    auto *line = cache.allocate(0, &victim);
    EXPECT_TRUE(line->data.empty());
}

TEST(CacheArrayTest, OccupancyCount)
{
    CacheArray cache(smallParams());
    EXPECT_EQ(cache.validLineCount(), 0u);
    CacheArray::Victim victim;
    for (int i = 0; i < 10; ++i)
        cache.allocate(i * 64, &victim);
    EXPECT_EQ(cache.validLineCount(), 10u);
}

TEST(CacheArrayTest, RandomisedAgainstReferenceLru)
{
    // Property: hit/miss behaviour matches a simple per-set reference
    // model over random traffic.
    CacheArray cache(smallParams());
    const unsigned num_sets = 4, assoc = 4, block = 64;
    // reference[set] = list of block addrs, most recent first.
    std::vector<std::vector<std::uint64_t>> reference(num_sets);
    Rng rng(42);

    for (int op = 0; op < 5000; ++op) {
        const std::uint64_t addr = rng.below(64) * block;
        const unsigned set = (addr / block) % num_sets;
        auto &ref = reference[set];
        const auto pos = std::find(ref.begin(), ref.end(), addr);
        const bool ref_hit = pos != ref.end();

        auto *line = cache.lookup(addr);
        ASSERT_EQ(line != nullptr, ref_hit) << "op " << op;
        if (ref_hit) {
            ref.erase(pos);
            ref.insert(ref.begin(), addr);
        } else {
            CacheArray::Victim victim;
            cache.allocate(addr, &victim);
            if (ref.size() == assoc) {
                ASSERT_TRUE(victim.valid);
                ASSERT_EQ(victim.blockAddr, ref.back());
                ref.pop_back();
            } else {
                ASSERT_FALSE(victim.valid);
            }
            ref.insert(ref.begin(), addr);
        }
    }
}

} // namespace
} // namespace cmt
