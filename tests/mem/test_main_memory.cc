/** @file Bus/DRAM timing model tests. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.h"
#include "mem/main_memory.h"

namespace cmt
{
namespace
{

struct Fixture
{
    EventQueue events;
    BackingStore store;
    StatGroup stats;
    MemTimingParams params;
    MainMemory mem{events, store, params, stats};
};

TEST(MainMemoryTest, SingleReadLatency)
{
    Fixture f;
    Cycle completed = 0;
    f.mem.read(0, 64, [&](std::span<const std::uint8_t>) {
        completed = f.events.now();
    });
    f.events.runUntil(10000);
    // addr bus at cycle 0, DRAM 80 cycles, 64B over 8B@5cyc = 40.
    EXPECT_EQ(completed, 0u + 80 + 40);
}

TEST(MainMemoryTest, ReadReturnsStoredData)
{
    Fixture f;
    const std::vector<std::uint8_t> data(64, 0x5a);
    f.store.write(128, data);
    std::vector<std::uint8_t> got;
    f.mem.read(128, 64, [&](std::span<const std::uint8_t> bytes) {
        got.assign(bytes.begin(), bytes.end());
    });
    f.events.runUntil(10000);
    EXPECT_EQ(got, data);
}

TEST(MainMemoryTest, DataSampledAtArrivalSeesLateTamper)
{
    // The functional bytes are sampled when the data arrives, so a
    // tamper *before* arrival is visible, modelling a bus adversary.
    Fixture f;
    std::vector<std::uint8_t> got;
    f.mem.read(0, 64, [&](std::span<const std::uint8_t> bytes) {
        got.assign(bytes.begin(), bytes.end());
    });
    f.events.runUntil(50); // before completion at 120
    const std::uint8_t evil = 0xee;
    f.store.tamper(0, {&evil, 1});
    f.events.runUntil(10000);
    ASSERT_EQ(got.size(), 64u);
    EXPECT_EQ(got[0], 0xee);
}

TEST(MainMemoryTest, BackToBackReadsSerialiseOnDataBus)
{
    Fixture f;
    std::vector<Cycle> completions;
    for (int i = 0; i < 4; ++i) {
        f.mem.read(i * 64, 64, [&](std::span<const std::uint8_t>) {
            completions.push_back(f.events.now());
        });
    }
    f.events.runUntil(100000);
    ASSERT_EQ(completions.size(), 4u);
    // First: 120. Later ones pipeline behind the data bus (40/block)
    // once DRAM latency is covered.
    EXPECT_EQ(completions[0], 120u);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(completions[i] - completions[i - 1], 40u)
            << "data bus should be the steady-state bottleneck";
}

TEST(MainMemoryTest, BandwidthAccounting)
{
    Fixture f;
    for (int i = 0; i < 10; ++i)
        f.mem.read(i * 64, 64, [](std::span<const std::uint8_t>) {});
    f.mem.write(0, 64);
    f.events.runUntil(100000);
    EXPECT_EQ(f.mem.stat_reads.value(), 10u);
    EXPECT_EQ(f.mem.stat_writes.value(), 1u);
    EXPECT_EQ(f.mem.stat_bytesRead.value(), 640u);
    EXPECT_EQ(f.mem.stat_bytesWritten.value(), 64u);
    EXPECT_EQ(f.mem.dataBusBusyCycles(), 11u * 40u);
}

TEST(MainMemoryTest, PeakBandwidthMatchesTable1)
{
    Fixture f;
    // 8 bytes per 5 CPU cycles = 1.6 GB/s at 1 GHz.
    EXPECT_DOUBLE_EQ(f.mem.peakBytesPerCycle(), 1.6);
}

TEST(MainMemoryTest, WritesOccupyDataBusWithoutDramLatency)
{
    Fixture f;
    Cycle done = 0;
    f.mem.write(0, 64, [&]() { done = f.events.now(); });
    f.events.runUntil(10000);
    EXPECT_EQ(done, 40u); // no 80-cycle DRAM wait for posted writes
}

TEST(EventQueueTest, FifoOrderingAtSameCycle)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(0); });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(2, [&] { ++fired; });
    });
    q.runUntil(10);
    EXPECT_EQ(fired, 2);
}

} // namespace
} // namespace cmt
