/** @file Sparse backing-store unit tests. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.h"
#include "support/random.h"

namespace cmt
{
namespace
{

TEST(BackingStoreTest, ReadsZeroWithoutAllocating)
{
    BackingStore store;
    std::vector<std::uint8_t> buf(256, 0xff);
    store.read(1ULL << 40, buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(store.pageCount(), 0u);
}

TEST(BackingStoreTest, WriteReadRoundTrip)
{
    BackingStore store;
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    store.write(100, data);
    std::vector<std::uint8_t> out(5);
    store.read(100, out);
    EXPECT_EQ(out, data);
    EXPECT_EQ(store.pageCount(), 1u);
}

TEST(BackingStoreTest, CrossPageAccess)
{
    BackingStore store;
    const std::uint64_t addr = BackingStore::kPageSize - 3;
    const std::vector<std::uint8_t> data{10, 20, 30, 40, 50, 60};
    store.write(addr, data);
    EXPECT_EQ(store.pageCount(), 2u);
    std::vector<std::uint8_t> out(6);
    store.read(addr, out);
    EXPECT_EQ(out, data);
}

TEST(BackingStoreTest, SparseFarApartWrites)
{
    BackingStore store;
    const std::uint8_t a = 0xaa, b = 0xbb;
    store.write(0, {&a, 1});
    store.write(1ULL << 42, {&b, 1});
    EXPECT_EQ(store.pageCount(), 2u);
    std::uint8_t out;
    store.read(0, {&out, 1});
    EXPECT_EQ(out, 0xaa);
    store.read(1ULL << 42, {&out, 1});
    EXPECT_EQ(out, 0xbb);
}

TEST(BackingStoreTest, PartialPageOverwrite)
{
    BackingStore store;
    std::vector<std::uint8_t> big(100, 1);
    store.write(50, big);
    std::vector<std::uint8_t> small(10, 2);
    store.write(60, small);
    std::vector<std::uint8_t> out(100);
    store.read(50, out);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], (i >= 10 && i < 20) ? 2 : 1) << i;
}

TEST(BackingStoreTest, RandomisedAgainstFlatReference)
{
    // Property: BackingStore behaves identically to one big array.
    constexpr std::uint64_t kSpan = 3 * BackingStore::kPageSize;
    BackingStore store;
    std::vector<std::uint8_t> reference(kSpan, 0);
    Rng rng(99);

    for (int op = 0; op < 2000; ++op) {
        const std::uint64_t addr = rng.below(kSpan - 64);
        const std::size_t len = 1 + rng.below(64);
        if (rng.chance(0.5)) {
            std::vector<std::uint8_t> data(len);
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            store.write(addr, data);
            std::copy(data.begin(), data.end(),
                      reference.begin() + addr);
        } else {
            std::vector<std::uint8_t> got(len);
            store.read(addr, got);
            const std::vector<std::uint8_t> want(
                reference.begin() + addr, reference.begin() + addr + len);
            ASSERT_EQ(got, want) << "op " << op;
        }
    }
}

TEST(BackingStoreTest, TamperIsVisible)
{
    BackingStore store;
    const std::uint8_t orig = 7;
    store.write(10, {&orig, 1});
    const std::uint8_t evil = 13;
    store.tamper(10, {&evil, 1});
    std::uint8_t out;
    store.read(10, {&out, 1});
    EXPECT_EQ(out, 13);
}

} // namespace
} // namespace cmt
