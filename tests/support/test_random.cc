/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>

#include "support/random.h"

namespace cmt
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u) << "all five values should appear";
}

TEST(RngTest, RealInUnitInterval)
{
    Rng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U[0,1) over 10k draws should be close to 0.5.
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceRoughlyCalibrated)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RngTest, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr int kBuckets = 8;
    int counts[kBuckets] = {};
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.below(kBuckets)];
    for (int c : counts)
        EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
}

} // namespace
} // namespace cmt
