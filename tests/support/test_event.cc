/**
 * @file
 * Event-core contract tests: the ordering guarantees the simulator
 * leans on (same-cycle FIFO, events scheduling events) plus the
 * slab-pool recycling behaviour under completion-style churn, and a
 * golden end-to-end mini-sweep pinning that the pooled/batched event
 * core reproduces the fig3 scheme results byte-for-byte.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/system.h"
#include "support/event.h"

namespace cmt
{
namespace
{

TEST(EventCore, SameCycleEventsRunInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    // Interleave two cycles' worth of events out of time order; each
    // cycle's batch must still drain FIFO in schedule order.
    q.schedule(7, [&] { order.push_back(10); });
    q.schedule(5, [&] { order.push_back(0); });
    q.schedule(7, [&] { order.push_back(11); });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11}));
}

TEST(EventCore, EventsSchedulingEventsCascadeAcrossCycles)
{
    EventQueue q;
    std::vector<Cycle> fired;
    // Each firing re-arms itself two cycles out: the chain must keep
    // running inside one runUntil() without external ticks.
    std::uint64_t remaining = 5;
    std::function<void()> arm = [&] {
        fired.push_back(q.now());
        if (--remaining > 0)
            q.scheduleIn(2, [&] { arm(); });
    };
    q.schedule(1, [&] { arm(); });
    q.runUntil(100);
    EXPECT_EQ(fired, (std::vector<Cycle>{1, 3, 5, 7, 9}));
    EXPECT_TRUE(q.empty());
}

TEST(EventCore, SameCycleFollowUpsRunBeforeTimeAdvances)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3, [&] {
        order.push_back(1);
        q.scheduleIn(0, [&] { order.push_back(3); });
    });
    q.schedule(3, [&] { order.push_back(2); });
    q.runUntil(3);
    // The nested zero-delay event lands after the already-queued
    // same-cycle event (FIFO by schedule time), before cycle 4.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 3u);
}

TEST(EventCore, SlabPoolRecyclesNodesUnderChurn)
{
    EventQueue q;
    // Completion-style churn: tens of thousands of events, but only a
    // handful in flight at once. Freed nodes must be reused - the
    // pool stays at its first slab instead of growing with the total
    // event count.
    std::uint64_t fired = 0;
    constexpr std::uint64_t kTotal = 50'000;
    std::function<void()> arm = [&] {
        ++fired;
        if (fired + 8 <= kTotal)
            q.scheduleIn(1 + fired % 3, [&] { arm(); });
    };
    for (int i = 0; i < 8; ++i)
        q.scheduleIn(1, [&] { arm(); });
    while (!q.empty())
        q.runUntil(q.nextEventTime());
    EXPECT_EQ(fired, kTotal);
    EXPECT_EQ(q.slabCount(), 1u)
        << "free-list recycling failed: pool grew under bounded "
           "in-flight churn";
}

TEST(EventCore, OversizedCallablesStillExecute)
{
    EventQueue q;
    // A capture bigger than the node's inline storage takes the heap
    // fallback; behaviour (not footprint) must be identical.
    std::array<std::uint64_t, 32> big{};
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = i + 1;
    std::uint64_t sum = 0;
    q.schedule(1, [big, &sum] {
        for (const std::uint64_t v : big)
            sum += v;
    });
    q.runUntil(1);
    EXPECT_EQ(sum, 32u * 33u / 2);
}

/**
 * Golden fig3 mini-sweep: one small run per scheme, pinned to exact
 * instruction/cycle/miss counts. The event core (pooled nodes, the
 * core's completion wheel, cycle skipping) is pure plumbing - any
 * drift in these numbers means the plumbing changed simulated
 * behaviour, the one thing it must never do. Regenerate only with a
 * deliberate behaviour change, alongside results/baselines/.
 */
struct GoldenRow
{
    Scheme scheme;
    std::uint64_t instructions;
    std::uint64_t cycles;
    std::uint64_t l2DemandMisses;
    std::uint64_t extraReadsPerMissMicros; ///< x1e6, truncated
    std::uint64_t integrityFailures;
};

TEST(EventCore, GoldenMiniSweepIsByteIdentical)
{
    const GoldenRow golden[] = {
        {Scheme::kBase, 20003, 77077, 1128, 0, 0},
        {Scheme::kCached, 20002, 137291, 1789, 636668, 0},
        {Scheme::kNaive, 20002, 881339, 1637, 12113622, 0},
        {Scheme::kIncremental, 20001, 115686, 436, 4788990, 0},
    };
    for (const GoldenRow &row : golden) {
        SystemConfig cfg;
        cfg.benchmark = "gcc";
        cfg.warmupInstructions = 5'000;
        cfg.measureInstructions = 20'000;
        cfg.l2.scheme = row.scheme;
        cfg.l2.sizeBytes = 256 << 10;
        if (row.scheme == Scheme::kIncremental)
            cfg.l2.chunkSize = 256;
        const SimResult r = simulate(cfg);
        EXPECT_EQ(r.instructions, row.instructions)
            << schemeName(row.scheme);
        EXPECT_EQ(r.cycles, row.cycles) << schemeName(row.scheme);
        EXPECT_EQ(r.l2DemandMisses, row.l2DemandMisses)
            << schemeName(row.scheme);
        EXPECT_EQ(static_cast<std::uint64_t>(r.extraReadsPerMiss *
                                             1e6),
                  row.extraReadsPerMissMicros)
            << schemeName(row.scheme);
        EXPECT_EQ(r.integrityFailures, row.integrityFailures)
            << schemeName(row.scheme);
    }
}

TEST(EventCore, GoldenShardedRunIsByteIdentical)
{
    SystemConfig cfg;
    cfg.benchmark = "twolf";
    cfg.warmupInstructions = 5'000;
    cfg.measureInstructions = 20'000;
    cfg.l2.scheme = Scheme::kCached;
    cfg.l2.shards = 4;
    const SimResult r = simulate(cfg);
    EXPECT_EQ(r.instructions, 20001u);
    EXPECT_EQ(r.cycles, 107325u);
    EXPECT_EQ(r.l2DemandMisses, 1671u);
    EXPECT_EQ(r.integrityFailures, 0u);
}

} // namespace
} // namespace cmt
