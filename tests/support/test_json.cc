/**
 * @file
 * Json writer/parser unit tests: escaping, number round-tripping,
 * member ordering, parse failures, and StatGroup serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "support/json.h"
#include "support/random.h"
#include "support/stats.h"

namespace cmt
{
namespace
{

TEST(Json, ScalarDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
    EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
    EXPECT_EQ(Json("line\nbreak\ttab").dump(),
              "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectKeepsInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", 1);
    obj.set("alpha", 2);
    obj.set("zebra", 3); // overwrite in place, not reordered
    EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"alpha\":2}");
    EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, ArrayAndNesting)
{
    Json doc = Json::object();
    Json arr = Json::array();
    arr.push(1).push("two").push(Json());
    doc.set("list", std::move(arr));
    EXPECT_EQ(doc.dump(), "{\"list\":[1,\"two\",null]}");
    EXPECT_EQ(doc.at("list").at(1).asString(), "two");
}

TEST(Json, PrettyPrint)
{
    Json doc = Json::object();
    doc.set("a", 1);
    EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1\n}\n");
    EXPECT_EQ(Json::array().dump(2), "[]\n");
}

TEST(Json, NumberRoundTrip)
{
    const double values[] = {0.0,   0.1,    1.0 / 3.0, 6.4,
                             1e-9,  2.5e17, -123.456,  0.2737150364};
    for (const double v : values) {
        Json parsed;
        ASSERT_TRUE(Json::parse(Json(v).dump(), &parsed));
        EXPECT_EQ(parsed.asNumber(), v) << "value " << v;
    }
}

TEST(Json, ParseDocument)
{
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(
        " { \"runs\" : [ { \"ipc\" : 1.25, \"ok\" : true } ],\n"
        "   \"n\" : -3e2, \"name\" : \"fig\\u0033\" } ",
        &doc, &err))
        << err;
    EXPECT_EQ(doc.at("runs").at(0).at("ipc").asNumber(), 1.25);
    EXPECT_TRUE(doc.at("runs").at(0).at("ok").asBool());
    EXPECT_EQ(doc.at("n").asNumber(), -300.0);
    EXPECT_EQ(doc.at("name").asString(), "fig3");
}

TEST(Json, ParseRejectsMalformed)
{
    Json doc;
    std::string err;
    EXPECT_FALSE(Json::parse("{", &doc, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(Json::parse("[1,]", &doc));
    EXPECT_FALSE(Json::parse("{\"a\" 1}", &doc));
    EXPECT_FALSE(Json::parse("42 junk", &doc));
    EXPECT_FALSE(Json::parse("\"unterminated", &doc));
    EXPECT_FALSE(Json::parse("", &doc));
}

TEST(Json, WriterOutputReparses)
{
    Json doc = Json::object();
    doc.set("label", "gcc/cached/256K \"quoted\"");
    doc.set("ipc", 0.30577123456789);
    Json arr = Json::array();
    for (int i = 0; i < 3; ++i)
        arr.push(i * 1.5);
    doc.set("xs", std::move(arr));

    for (const int indent : {0, 2}) {
        Json back;
        std::string err;
        ASSERT_TRUE(Json::parse(doc.dump(indent), &back, &err)) << err;
        EXPECT_EQ(back.at("label").asString(),
                  "gcc/cached/256K \"quoted\"");
        EXPECT_EQ(back.at("ipc").asNumber(), 0.30577123456789);
        EXPECT_EQ(back.at("xs").size(), 3u);
    }
}

TEST(Json, StatGroupSerialization)
{
    StatGroup stats;
    Counter hits(stats, "l2.hits", "hits");
    Counter misses(stats, "l2.misses", "misses");
    Distribution lat(stats, "mem.latency", "cycles");
    ++hits;
    hits += 9;
    lat.sample(10);
    lat.sample(20);

    const Json obj = toJson(stats);
    EXPECT_EQ(obj.at("l2.hits").asNumber(), 10.0);
    EXPECT_EQ(obj.at("l2.misses").asNumber(), 0.0);
    EXPECT_EQ(obj.at("mem.latency").at("count").asNumber(), 2.0);
    EXPECT_EQ(obj.at("mem.latency").at("mean").asNumber(), 15.0);
    EXPECT_EQ(obj.at("mem.latency").at("max").asNumber(), 20.0);

    Json back;
    ASSERT_TRUE(Json::parse(obj.dump(2), &back));
    EXPECT_EQ(back.at("l2.hits").asNumber(), 10.0);
}

// ---------------------------------------------------------------------
// Property tests: serialize -> parse -> serialize must be the identity
// on bytes for any document the writer can produce. The persistent
// memo cache and the regression harness both rely on this (dump()
// equality is their definition of "same result").
// ---------------------------------------------------------------------

/** Random string over printables, escapes, and control characters. */
std::string
randomString(Rng &rng)
{
    static const char alphabet[] =
        "abcXYZ 0123456789_/\\\"\n\t\r\b\f\x01\x1f{}[]:,\x7f";
    std::string s;
    const std::size_t len = rng.below(24);
    for (std::size_t i = 0; i < len; ++i)
        s += alphabet[rng.below(sizeof alphabet - 1)];
    return s;
}

/** Random finite double spanning magnitudes and integer values. */
double
randomNumber(Rng &rng)
{
    switch (rng.below(5)) {
    case 0:
        return static_cast<double>(rng.next() >> 12) -
               static_cast<double>(1ULL << 51); // large integers
    case 1:
        return static_cast<double>(
            static_cast<std::int64_t>(rng.below(2000)) - 1000);
    case 2:
        return rng.real(); // [0, 1)
    case 3:
        return (rng.real() - 0.5) *
               std::pow(10.0, static_cast<double>(rng.range(0, 300)) -
                                  150.0); // extreme exponents
    default:
        return std::ldexp(rng.real() + 1.0,
                          static_cast<int>(rng.range(0, 64)) - 32);
    }
}

Json
randomValue(Rng &rng, unsigned depth)
{
    const std::uint64_t kinds = depth == 0 ? 4 : 6;
    switch (rng.below(kinds)) {
    case 0: return Json();
    case 1: return Json(rng.chance(0.5));
    case 2: return Json(randomNumber(rng));
    case 3: return Json(randomString(rng));
    case 4: {
        Json arr = Json::array();
        const std::size_t n = rng.below(5);
        for (std::size_t i = 0; i < n; ++i)
            arr.push(randomValue(rng, depth - 1));
        return arr;
    }
    default: {
        Json obj = Json::object();
        const std::size_t n = rng.below(5);
        for (std::size_t i = 0; i < n; ++i)
            obj.set(randomString(rng), randomValue(rng, depth - 1));
        return obj;
    }
    }
}

TEST(JsonProperty, RandomDocumentsRoundTripByteIdentically)
{
    Rng rng(20030212); // deterministic: fixed seed, fixed doc count
    for (int trial = 0; trial < 200; ++trial) {
        const Json doc = randomValue(rng, 3);
        const std::string first = doc.dump();

        Json parsed;
        std::string err;
        ASSERT_TRUE(Json::parse(first, &parsed, &err))
            << "trial " << trial << ": " << err << "\n" << first;
        EXPECT_EQ(parsed.dump(), first) << "trial " << trial;

        // Pretty-printing must not change the value either.
        Json fromPretty;
        ASSERT_TRUE(Json::parse(doc.dump(2), &fromPretty, &err))
            << "trial " << trial << ": " << err;
        EXPECT_EQ(fromPretty.dump(), first) << "trial " << trial;
    }
}

TEST(JsonProperty, RandomNumbersRoundTripExactly)
{
    Rng rng(42);
    for (int trial = 0; trial < 2000; ++trial) {
        const double v = randomNumber(rng);
        Json parsed;
        ASSERT_TRUE(Json::parse(Json(v).dump(), &parsed))
            << "value " << v;
        EXPECT_EQ(parsed.asNumber(), v) << "value " << v;
    }
}

TEST(JsonProperty, RandomStringsRoundTripExactly)
{
    Rng rng(7);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::string s = randomString(rng);
        Json parsed;
        ASSERT_TRUE(Json::parse(Json(s).dump(), &parsed))
            << "string " << Json(s).dump();
        EXPECT_EQ(parsed.asString(), s);
    }
}

} // namespace
} // namespace cmt
