/** @file Unit tests for the table formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "support/table.h"

namespace cmt
{
namespace
{

TEST(TableTest, AlignsColumns)
{
    Table t("Figure X");
    t.header({"bench", "base", "c"});
    t.row({"gcc", "1.234", "1.200"});
    t.row({"swim", "0.800", "0.790"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Figure X"), std::string::npos);
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("gcc"), std::string::npos);
    // Every line in the body should be the same length (alignment).
    std::istringstream is(out);
    std::string line;
    std::getline(is, line); // title
    std::size_t len = 0;
    while (std::getline(is, line)) {
        if (len == 0)
            len = line.size();
        EXPECT_EQ(line.size(), len) << "misaligned line: " << line;
    }
}

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 3), "1.235");
    EXPECT_EQ(Table::num(2.0, 1), "2.0");
    EXPECT_EQ(Table::pct(0.05, 1), "5.0%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

} // namespace
} // namespace cmt
