/** @file Unit tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "support/bitops.h"
#include "support/logging.h"

namespace cmt
{
namespace
{

TEST(BitopsTest, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_TRUE(isPow2(1ULL << 63));
    EXPECT_FALSE(isPow2((1ULL << 63) + 1));
}

TEST(BitopsTest, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ULL << 63), 63u);
}

TEST(BitopsTest, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitopsTest, AlignDownUp)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
}

TEST(BitopsTest, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(8, 4), 2u);
}

// Regression tests for the hardened preconditions: before the checks
// were added these inputs silently returned garbage (floorLog2(0) was
// 0, alignUp with a non-power mask dropped arbitrary bits) rather
// than faulting where the bad value entered.

TEST(BitopsTest, PreconditionViolationsPanic)
{
    ScopedThrowOnError guard;
    EXPECT_THROW(floorLog2(0), SimError);
    EXPECT_THROW(ceilLog2(0), SimError);
    EXPECT_THROW(alignDown(100, 0), SimError);
    EXPECT_THROW(alignDown(100, 48), SimError);
    EXPECT_THROW(alignUp(100, 0), SimError);
    EXPECT_THROW(alignUp(100, 96), SimError);
    EXPECT_THROW(divCeil(1, 0), SimError);
}

TEST(BitopsTest, AlignUpOverflowPanicsInsteadOfWrapping)
{
    ScopedThrowOnError guard;
    const std::uint64_t max = ~std::uint64_t{0};
    // v + align - 1 would wrap past 2^64 and silently return 0.
    EXPECT_THROW(alignUp(max, 64), SimError);
    EXPECT_THROW(alignUp(max - 62, 64), SimError);
    // Largest representable multiple is fine.
    EXPECT_EQ(alignUp(max - 63, 64), max - 63);
}

/** Property sweep: align identities hold for all powers of two. */
class BitopsAlignProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitopsAlignProperty, Identities)
{
    const std::uint64_t align = 1ULL << GetParam();
    for (std::uint64_t v : {0ULL, 1ULL, 63ULL, 64ULL, 12345ULL,
                            (1ULL << 40) + 17}) {
        const std::uint64_t down = alignDown(v, align);
        const std::uint64_t up = alignUp(v, align);
        EXPECT_LE(down, v);
        EXPECT_GE(up, v);
        EXPECT_EQ(down % align, 0u);
        EXPECT_EQ(up % align, 0u);
        EXPECT_LT(v - down, align);
        EXPECT_LT(up - v, align);
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlignments, BitopsAlignProperty,
                         ::testing::Values(0u, 1u, 3u, 6u, 7u, 12u, 20u));

} // namespace
} // namespace cmt
