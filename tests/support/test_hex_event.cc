/** @file Hex codec and event-queue edge-case tests. */

#include <gtest/gtest.h>

#include "support/event.h"
#include "support/hex.h"

namespace cmt
{
namespace
{

TEST(HexTest, RoundTrip)
{
    const std::vector<std::uint8_t> bytes{0x00, 0x01, 0xab, 0xff, 0x7e};
    EXPECT_EQ(toHex(bytes), "0001abff7e");
    EXPECT_EQ(fromHex("0001abff7e"), bytes);
    EXPECT_EQ(fromHex("0001ABFF7E"), bytes) << "upper case accepted";
}

TEST(HexTest, Empty)
{
    EXPECT_EQ(toHex({}), "");
    EXPECT_TRUE(fromHex("").empty());
}

TEST(HexTest, AllByteValues)
{
    std::vector<std::uint8_t> all(256);
    for (int i = 0; i < 256; ++i)
        all[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(fromHex(toHex(all)), all);
}

TEST(EventQueueTest, RunUntilWithNoEventsAdvancesTime)
{
    EventQueue q;
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NestedSchedulingAtSameCycle)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(1);
        q.scheduleIn(0, [&] { order.push_back(2); });
    });
    q.runUntil(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2}))
        << "same-cycle follow-ups run within the same runUntil";
}

TEST(EventQueueTest, NextEventTime)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextEventTime(), 42u);
}

TEST(EventQueueTest, InterleavedDelaysRunInOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(10); });
    q.schedule(3, [&] {
        order.push_back(3);
        q.scheduleIn(4, [&] { order.push_back(7); });
    });
    q.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{3, 7, 10}));
}

} // namespace
} // namespace cmt
