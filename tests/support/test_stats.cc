/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "support/stats.h"

namespace cmt
{
namespace
{

TEST(StatsTest, CounterBasics)
{
    StatGroup group;
    Counter c(group, "unit.hits", "number of hits");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(group.counterValue("unit.hits"), 5u);
    EXPECT_EQ(group.counterValue("unit.misses"), 0u);
}

TEST(StatsTest, ResetAllClearsEverything)
{
    StatGroup group;
    Counter c(group, "a", "");
    Distribution d(group, "b", "");
    c += 10;
    d.sample(3.0);
    group.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(StatsTest, DistributionMoments)
{
    StatGroup group;
    Distribution d(group, "lat", "latency");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
}

TEST(StatsTest, DistributionSingleSample)
{
    StatGroup group;
    Distribution d(group, "x", "");
    d.sample(-5);
    EXPECT_DOUBLE_EQ(d.min(), -5.0);
    EXPECT_DOUBLE_EQ(d.max(), -5.0);
    EXPECT_DOUBLE_EQ(d.mean(), -5.0);
}

TEST(StatsTest, DumpContainsNamesAndValues)
{
    StatGroup group;
    Counter c(group, "l2.misses", "L2 misses");
    c += 123;
    std::ostringstream os;
    group.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("l2.misses"), std::string::npos);
    EXPECT_NE(out.find("123"), std::string::npos);
    EXPECT_NE(out.find("L2 misses"), std::string::npos);
}

} // namespace
} // namespace cmt
