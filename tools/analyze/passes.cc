#include "analyze/passes.h"

#include "analyze/index.h"

#include <algorithm>
#include <deque>
#include <map>
#include <regex>
#include <set>

namespace cmt::analyze
{

namespace
{

// ------------------------------------------------------ shared bits

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

std::string
fileStem(const std::string &path)
{
    std::string base = baseName(path);
    const std::size_t dot = base.rfind('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

bool
pathInDir(const std::string &path, const std::string &dir)
{
    if (path.rfind(dir + "/", 0) == 0)
        return true;
    return path.find("/" + dir + "/") != std::string::npos;
}

/** Function-scoped allow: anywhere from just above the declarator
 *  (multi-line signatures put the return type on its own line) down
 *  to the opening brace. */
bool
functionAllowed(const FileSummary &file, const std::string &rule,
                const FunctionInfo &fn)
{
    auto it = file.allowLines.find(rule);
    if (it == file.allowLines.end())
        return false;
    for (int line = fn.nameLine - 3;
         line <= std::max(fn.bodyOpenLine, fn.nameLine); ++line)
        if (it->second.contains(line))
            return true;
    return false;
}

std::string
qualifiedName(const FunctionInfo &fn)
{
    return fn.className.empty() ? fn.name
                                : fn.className + "::" + fn.name;
}

/** Function identity across the whole program. */
struct FnRef
{
    std::size_t file = 0;
    std::size_t fn = 0;
    bool operator<(const FnRef &o) const
    {
        return file != o.file ? file < o.file : fn < o.fn;
    }
};

/** Name -> definitions, for call-edge resolution by unqualified
 *  name (receivers are expressions, not class names, so qualifier
 *  filtering is best-effort). */
class CallResolver
{
  public:
    explicit CallResolver(const std::vector<FileSummary> &files)
        : files_(files)
    {
        for (std::size_t f = 0; f < files.size(); ++f)
            for (std::size_t k = 0; k < files[f].functions.size();
                 ++k)
                byName_[files[f].functions[k].name].push_back(
                    {f, k});
    }

    const std::vector<FnRef> &candidates(
        const std::string &name) const
    {
        static const std::vector<FnRef> empty;
        auto it = byName_.find(name);
        return it == byName_.end() ? empty : it->second;
    }

    /**
     * Precise resolution for lock propagation, where a spurious
     * match manufactures phantom deadlock edges (`doc.find()` on a
     * Json must not resolve to MemoCache::find, which locks).
     * Implicit-this calls bind within the caller's class; a
     * qualifier that names a class binds statically; a unique
     * definition binds anywhere; everything else — an ambiguous
     * name behind an untyped receiver — resolves to nothing.
     */
    std::vector<FnRef> resolveStrict(
        const std::string &callerClass, const Event &e) const
    {
        const std::vector<FnRef> &cands = candidates(e.name);
        if (cands.empty())
            return {};
        std::vector<FnRef> match;
        if (e.qualifier.empty()) {
            for (const FnRef &ref : cands)
                if (!fn(ref).className.empty() &&
                    fn(ref).className == callerClass)
                    match.push_back(ref);
        } else {
            for (const FnRef &ref : cands)
                if (fn(ref).className == e.qualifier)
                    match.push_back(ref);
        }
        if (!match.empty())
            return match;
        if (cands.size() == 1)
            return cands;
        return {};
    }

    const FunctionInfo &fn(const FnRef &ref) const
    {
        return files_[ref.file].functions[ref.fn];
    }

  private:
    const std::vector<FileSummary> &files_;
    std::map<std::string, std::vector<FnRef>> byName_;
};

// ----------------------------------------------------- trust rule

/** Files that ARE the trust boundary (the store itself) or are
 *  explicitly unverified by design (the paper's base scheme). */
bool
trustAllowlisted(const std::string &path)
{
    const std::string base = baseName(path);
    return base == "chunk_store.h" || base == "chunk_store.cc" ||
           base == "null_policy.h" || base == "null_policy.cc";
}

/** Fixpoint: a function is "verifying" when it calls verify
 *  directly or calls (on any path) a verifying function. Calling
 *  one sanctions the data a caller holds. */
std::set<FnRef>
verifyingClosure(const std::vector<FileSummary> &files,
                 const CallResolver &resolver)
{
    std::set<FnRef> verifying;
    for (std::size_t f = 0; f < files.size(); ++f)
        for (std::size_t k = 0; k < files[f].functions.size(); ++k)
            for (const Event &e : files[f].functions[k].events)
                if (e.kind == Event::Kind::kVerify)
                    verifying.insert({f, k});
    bool grew = true;
    while (grew) {
        grew = false;
        for (std::size_t f = 0; f < files.size(); ++f) {
            for (std::size_t k = 0; k < files[f].functions.size();
                 ++k) {
                const FnRef self{f, k};
                if (verifying.contains(self))
                    continue;
                for (const Event &e :
                     files[f].functions[k].events) {
                    if (e.kind != Event::Kind::kCall)
                        continue;
                    for (const FnRef &callee :
                         resolver.candidates(e.name)) {
                        if (verifying.contains(callee)) {
                            verifying.insert(self);
                            grew = true;
                            break;
                        }
                    }
                    if (verifying.contains(self))
                        break;
                }
            }
        }
    }
    return verifying;
}

/** Path state for the event-tree interpreter. */
struct TaintState
{
    bool tainted = false;
    bool dead = false; ///< path already left via return/throw
    int readLine = 0;  ///< first unverified read on this path
};

TaintState
mergeStates(const TaintState &a, const TaintState &b)
{
    if (a.dead)
        return b;
    if (b.dead)
        return a;
    TaintState out;
    out.tainted = a.tainted || b.tainted;
    out.readLine = a.readLine != 0 ? a.readLine : b.readLine;
    return out;
}

} // namespace

std::vector<Diagnostic>
trustBoundaryPass(const std::vector<FileSummary> &files)
{
    static const std::string rule = "trust-boundary";
    const CallResolver resolver(files);
    const std::set<FnRef> verifying =
        verifyingClosure(files, resolver);
    const auto calleeVerifies = [&](const Event &e) {
        for (const FnRef &callee : resolver.candidates(e.name))
            if (verifying.contains(callee))
                return true;
        return false;
    };

    std::vector<Diagnostic> out;
    for (const FileSummary &file : files) {
        const bool inScope = pathInDir(file.path, "src/tree") ||
                             pathInDir(file.path, "src/verify");
        if (!inScope || trustAllowlisted(file.path))
            continue;
        for (const FunctionInfo &fn : file.functions) {
            const bool sink =
                !fn.returnsVoid || fn.hasMutableSpanParam;
            const bool reads = std::any_of(
                fn.events.begin(), fn.events.end(),
                [](const Event &e) {
                    return e.kind == Event::Kind::kRead;
                });
            if (!sink || !reads ||
                functionAllowed(file, rule, fn))
                continue;

            struct Frame
            {
                TaintState saved;
                TaintState thenOut;
                bool haveThen = false;
            };
            TaintState cur;
            std::vector<Frame> frames;
            std::set<int> flagged;
            const auto violate = [&](int line) {
                if (!flagged.insert(line).second)
                    return;
                if (allowedAt(file, rule, line))
                    return;
                Diagnostic d;
                d.file = file.path;
                d.line = line;
                d.rule = rule;
                d.message =
                    "'" + qualifiedName(fn) +
                    "' lets data read from untrusted RAM (line " +
                    std::to_string(cur.readLine) +
                    ") escape without a verify on every path; the "
                    "hash-tree invariant requires verify-before-use";
                out.push_back(std::move(d));
            };

            for (const Event &e : fn.events) {
                switch (e.kind) {
                case Event::Kind::kRead:
                    if (!cur.dead) {
                        cur.tainted = true;
                        if (cur.readLine == 0)
                            cur.readLine = e.line;
                    }
                    break;
                case Event::Kind::kVerify:
                    if (!cur.dead)
                        cur.tainted = false;
                    break;
                case Event::Kind::kCall:
                    if (!cur.dead && calleeVerifies(e))
                        cur.tainted = false;
                    break;
                case Event::Kind::kReturn:
                    if (!cur.dead && cur.tainted)
                        violate(e.line);
                    cur.dead = true;
                    break;
                case Event::Kind::kThrow:
                    cur.dead = true;
                    break;
                case Event::Kind::kIfBegin:
                case Event::Kind::kMaybeBegin:
                    frames.push_back({cur, {}, false});
                    break;
                case Event::Kind::kElseBegin:
                    if (!frames.empty()) {
                        frames.back().thenOut = cur;
                        frames.back().haveThen = true;
                        cur = frames.back().saved;
                    }
                    break;
                case Event::Kind::kIfEnd:
                    if (!frames.empty()) {
                        const Frame f = frames.back();
                        frames.pop_back();
                        cur = mergeStates(
                            cur, f.haveThen ? f.thenOut : f.saved);
                    }
                    break;
                case Event::Kind::kMaybeEnd:
                    if (!frames.empty()) {
                        const Frame f = frames.back();
                        frames.pop_back();
                        cur = mergeStates(cur, f.saved);
                    }
                    break;
                case Event::Kind::kLock:
                case Event::Kind::kUnlock:
                    break;
                }
            }
            // Falling off the end only leaks through an
            // out-parameter (a non-void function must return).
            if (!cur.dead && cur.tainted && fn.hasMutableSpanParam)
                violate(fn.endLine);
        }
    }
    return out;
}

// ------------------------------------------------------- lock rule

namespace
{

/** Qualify a MutexLock argument so `mu_` in two classes stays two
 *  locks: `Class::mu_`, or `filestem::mu` for free functions.
 *  Compound expressions (a.mu, ptr->mu) already self-qualify. */
std::string
qualifyLock(const FileSummary &file, const FunctionInfo &fn,
            const std::string &expr)
{
    if (expr.find('.') != std::string::npos ||
        expr.find("->") != std::string::npos ||
        expr.find("::") != std::string::npos)
        return expr;
    const std::string prefix =
        fn.className.empty() ? fileStem(file.path) : fn.className;
    return prefix + "::" + expr;
}

struct EdgeSite
{
    std::string file;
    int line = 0;
    std::string via; ///< empty for a direct acquisition
};

/** May-acquire closure: every lock a function can take, directly or
 *  through any call chain. */
std::map<FnRef, std::set<std::string>>
transitiveAcquires(const std::vector<FileSummary> &files,
                   const CallResolver &resolver)
{
    std::map<FnRef, std::set<std::string>> acquires;
    for (std::size_t f = 0; f < files.size(); ++f)
        for (std::size_t k = 0; k < files[f].functions.size(); ++k) {
            const FunctionInfo &fn = files[f].functions[k];
            for (const Event &e : fn.events)
                if (e.kind == Event::Kind::kLock)
                    acquires[{f, k}].insert(
                        qualifyLock(files[f], fn, e.name));
        }
    bool grew = true;
    while (grew) {
        grew = false;
        for (std::size_t f = 0; f < files.size(); ++f) {
            for (std::size_t k = 0; k < files[f].functions.size();
                 ++k) {
                const FnRef self{f, k};
                std::set<std::string> &mine = acquires[self];
                const std::string &callerClass =
                    files[f].functions[k].className;
                for (const Event &e :
                     files[f].functions[k].events) {
                    if (e.kind != Event::Kind::kCall &&
                        e.kind != Event::Kind::kVerify)
                        continue;
                    for (const FnRef &callee :
                         resolver.resolveStrict(callerClass, e)) {
                        auto it = acquires.find(callee);
                        if (it == acquires.end())
                            continue;
                        for (const std::string &lock : it->second)
                            grew |= mine.insert(lock).second;
                    }
                }
            }
        }
    }
    return acquires;
}

} // namespace

std::vector<Diagnostic>
lockOrderPass(const std::vector<FileSummary> &files)
{
    static const std::string rule = "lock-order";
    const CallResolver resolver(files);
    const std::map<FnRef, std::set<std::string>> acquires =
        transitiveAcquires(files, resolver);

    // held-before edges, first site wins (stable diagnostics).
    std::map<std::string, std::map<std::string, EdgeSite>> edges;
    const auto addEdge = [&](const std::string &from,
                             const std::string &to,
                             EdgeSite site) {
        edges[from].try_emplace(to, std::move(site));
    };

    for (std::size_t f = 0; f < files.size(); ++f) {
        for (std::size_t k = 0; k < files[f].functions.size();
             ++k) {
            const FunctionInfo &fn = files[f].functions[k];
            if (functionAllowed(files[f], rule, fn))
                continue;
            std::vector<std::string> held;
            for (const Event &e : fn.events) {
                if (e.kind == Event::Kind::kLock) {
                    const std::string id =
                        qualifyLock(files[f], fn, e.name);
                    for (const std::string &h : held)
                        addEdge(h, id,
                                {files[f].path, e.line, ""});
                    held.push_back(id);
                } else if (e.kind == Event::Kind::kUnlock) {
                    const std::string id =
                        qualifyLock(files[f], fn, e.name);
                    auto it =
                        std::find(held.rbegin(), held.rend(), id);
                    if (it != held.rend())
                        held.erase(std::next(it).base());
                } else if ((e.kind == Event::Kind::kCall ||
                            e.kind == Event::Kind::kVerify) &&
                           !held.empty()) {
                    if (allowedAt(files[f], rule, e.line))
                        continue;
                    for (const FnRef &callee :
                         resolver.resolveStrict(fn.className, e)) {
                        auto it = acquires.find(callee);
                        if (it == acquires.end())
                            continue;
                        for (const std::string &lock : it->second)
                            for (const std::string &h : held)
                                addEdge(h, lock,
                                        {files[f].path, e.line,
                                         e.name});
                    }
                }
            }
        }
    }

    // Any edge u -> v with a path v ->* u closes a cycle.
    const auto pathBack =
        [&](const std::string &from,
            const std::string &to) -> std::vector<std::string> {
        std::map<std::string, std::string> parent;
        std::deque<std::string> queue{from};
        parent[from] = from;
        while (!queue.empty()) {
            const std::string cur = queue.front();
            queue.pop_front();
            if (cur == to)
                break;
            auto it = edges.find(cur);
            if (it == edges.end())
                continue;
            for (const auto &[next, site] : it->second)
                if (parent.try_emplace(next, cur).second)
                    queue.push_back(next);
        }
        std::vector<std::string> path;
        if (!parent.contains(to))
            return path;
        for (std::string cur = to;; cur = parent[cur]) {
            path.push_back(cur);
            if (cur == from)
                break;
        }
        std::reverse(path.begin(), path.end());
        return path;
    };

    std::vector<Diagnostic> out;
    std::set<std::set<std::string>> reported;
    for (const auto &[from, targets] : edges) {
        for (const auto &[to, site] : targets) {
            std::vector<std::string> back;
            if (from == to) {
                back = {to};
            } else {
                back = pathBack(to, from);
                if (back.empty())
                    continue;
            }
            std::set<std::string> key(back.begin(), back.end());
            key.insert(from);
            if (!reported.insert(key).second)
                continue;
            // back runs to -> ... -> from inclusive, so the chain
            // closes itself.
            std::string chain = from;
            for (const std::string &node : back)
                chain += " -> " + node;
            Diagnostic d;
            d.file = site.file;
            d.line = site.line;
            d.rule = rule;
            d.message = "lock-order cycle: " + chain +
                        (site.via.empty()
                             ? std::string()
                             : " (via call to '" + site.via +
                                   "')") +
                        "; two threads taking these in opposite "
                        "order deadlock";
            out.push_back(std::move(d));
        }
    }
    return out;
}

// ------------------------------------------------ error discipline

std::vector<Diagnostic>
errorDisciplinePass(const std::vector<FileSummary> &files)
{
    static const std::string rule = "error-discipline";
    static const std::regex nameRe(
        "^(verify|check|save|load|restore|persist)");
    const CallResolver resolver(files);

    const auto mustCheck = [&](const Event &e) {
        if (!std::regex_search(e.name, nameRe))
            return false;
        const std::vector<FnRef> &defs =
            resolver.candidates(e.name);
        if (defs.empty())
            // `verify` is the sanctioned integrity call even when
            // its definition is outside the indexed tree.
            return e.kind == Event::Kind::kVerify;
        // Mixed overload sets (some void) stay quiet: resolution
        // is by name only, so only flag when every definition
        // returns a checkable verdict.
        return std::all_of(
            defs.begin(), defs.end(), [&](const FnRef &ref) {
                const std::string &ret =
                    resolver.fn(ref).returnType;
                return ret == "bool" ||
                       ret.find("Status") != std::string::npos;
            });
    };

    std::vector<Diagnostic> out;
    for (const FileSummary &file : files) {
        for (const FunctionInfo &fn : file.functions) {
            for (const Event &e : fn.events) {
                if (!e.discarded)
                    continue;
                if (e.kind != Event::Kind::kCall &&
                    e.kind != Event::Kind::kVerify)
                    continue;
                if (!mustCheck(e) ||
                    allowedAt(file, rule, e.line))
                    continue;
                Diagnostic d;
                d.file = file.path;
                d.line = e.line;
                d.rule = rule;
                d.message =
                    "result of '" + e.name +
                    "()' is discarded; a bool/Status verify or "
                    "persistence verdict must be checked";
                out.push_back(std::move(d));
            }
        }
    }
    return out;
}

// ------------------------------------------------- include hygiene

namespace
{

/** Resolve an include spelling to an indexed file, mimicking the
 *  build's include dirs (repo root trees + includer-relative). */
std::size_t
resolveInclude(const std::string &includer, const std::string &inc,
               const std::map<std::string, std::size_t> &byPath)
{
    std::vector<std::string> candidates;
    const std::size_t slash = includer.rfind('/');
    if (slash != std::string::npos)
        candidates.push_back(includer.substr(0, slash + 1) + inc);
    for (const char *tree :
         {"src/", "tools/", "bench/", "tests/", "examples/"})
        candidates.push_back(tree + inc);
    candidates.push_back(inc);
    for (const std::string &c : candidates) {
        auto it = byPath.find(c);
        if (it != byPath.end())
            return it->second;
    }
    return byPath.size(); // sentinel: unresolved
}

} // namespace

std::vector<Diagnostic>
includeHygienePass(const std::vector<FileSummary> &files)
{
    static const std::string rule = "include-hygiene";
    std::map<std::string, std::size_t> byPath;
    for (std::size_t f = 0; f < files.size(); ++f)
        byPath.emplace(files[f].path, f);

    // Resolved direct includes per file.
    std::vector<std::vector<std::size_t>> direct(files.size());
    for (std::size_t f = 0; f < files.size(); ++f) {
        for (const std::string &inc : files[f].quotedIncludes) {
            const std::size_t target =
                resolveInclude(files[f].path, inc, byPath);
            direct[f].push_back(target);
        }
    }

    // Type name -> unique defining file (ambiguous names drop out).
    std::map<std::string, std::size_t> uniqueHome;
    std::set<std::string> ambiguous;
    for (std::size_t f = 0; f < files.size(); ++f) {
        for (const std::string &type : files[f].definedTypes) {
            if (ambiguous.contains(type))
                continue;
            auto [it, inserted] = uniqueHome.emplace(type, f);
            if (!inserted && it->second != f) {
                uniqueHome.erase(it);
                ambiguous.insert(type);
            }
        }
    }

    const auto selfHeaderOf = [&](std::size_t f) {
        const std::string &path = files[f].path;
        const std::size_t dot = path.rfind('.');
        if (dot == std::string::npos)
            return files.size();
        for (const char *ext : {".h", ".hpp"}) {
            auto it = byPath.find(path.substr(0, dot) + ext);
            if (it != byPath.end() && it->second != f)
                return it->second;
        }
        return files.size();
    };

    std::vector<Diagnostic> out;
    for (std::size_t f = 0; f < files.size(); ++f) {
        const FileSummary &file = files[f];
        const std::size_t selfHeader = selfHeaderOf(f);

        // Transitive include closure (resolved quoted edges only).
        std::set<std::size_t> closure;
        std::deque<std::size_t> queue{f};
        closure.insert(f);
        while (!queue.empty()) {
            const std::size_t cur = queue.front();
            queue.pop_front();
            for (std::size_t t : direct[cur])
                if (t < files.size() && closure.insert(t).second)
                    queue.push_back(t);
        }

        // -- unused direct includes
        for (std::size_t i = 0; i < direct[f].size(); ++i) {
            const std::size_t t = direct[f][i];
            if (t >= files.size() || t == f || t == selfHeader)
                continue;
            const FileSummary &target = files[t];
            if (target.declaredSymbols.empty())
                continue; // nothing to judge by
            const int line = i < file.quotedIncludeLines.size()
                                 ? file.quotedIncludeLines[i]
                                 : 0;
            if (allowedAt(file, rule, line))
                continue;
            const bool used = std::any_of(
                target.declaredSymbols.begin(),
                target.declaredSymbols.end(),
                [&](const std::string &sym) {
                    return file.usedIdentifiers.contains(sym);
                });
            if (used)
                continue;
            Diagnostic d;
            d.file = file.path;
            d.line = line;
            d.rule = rule;
            d.message = "include \"" + file.quotedIncludes[i] +
                        "\" is unused: nothing it declares is "
                        "referenced here";
            out.push_back(std::move(d));
        }

        // -- types reached only through transitive includes
        const std::set<std::size_t> directSet(direct[f].begin(),
                                              direct[f].end());
        for (const auto &[name, firstLine] :
             file.usedIdentifiers) {
            auto home = uniqueHome.find(name);
            if (home == uniqueHome.end() || home->second == f)
                continue;
            const std::size_t h = home->second;
            if (directSet.contains(h) || !closure.contains(h))
                continue;
            if (file.definedTypes.contains(name) ||
                file.declaredSymbols.contains(name))
                continue; // forward-declared locally
            // A direct include that (forward-)declares the name
            // satisfies the use.
            bool viaDirect = false;
            for (std::size_t t : directSet)
                if (t < files.size() &&
                    files[t].declaredSymbols.contains(name)) {
                    viaDirect = true;
                    break;
                }
            if (viaDirect || allowedAt(file, rule, firstLine))
                continue;
            Diagnostic d;
            d.file = file.path;
            d.line = firstLine;
            d.rule = rule;
            d.message = "'" + name + "' is defined in " +
                        files[h].path +
                        ", which is only included transitively; "
                        "include it directly";
            out.push_back(std::move(d));
        }
    }
    return out;
}

// ----------------------------------------------------- entry point

std::vector<std::string>
ruleNames()
{
    return {"trust-boundary", "lock-order", "error-discipline",
            "include-hygiene"};
}

std::vector<Diagnostic>
runPasses(const std::vector<FileSummary> &files,
          const std::vector<std::string> &rules)
{
    const auto enabled = [&](const char *rule) {
        return rules.empty() ||
               std::find(rules.begin(), rules.end(), rule) !=
                   rules.end();
    };
    std::vector<Diagnostic> out;
    const auto append = [&](std::vector<Diagnostic> diags) {
        out.insert(out.end(),
                   std::make_move_iterator(diags.begin()),
                   std::make_move_iterator(diags.end()));
    };
    if (enabled("trust-boundary"))
        append(trustBoundaryPass(files));
    if (enabled("lock-order"))
        append(lockOrderPass(files));
    if (enabled("error-discipline"))
        append(errorDisciplinePass(files));
    if (enabled("include-hygiene"))
        append(includeHygienePass(files));
    std::sort(out.begin(), out.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

} // namespace cmt::analyze
