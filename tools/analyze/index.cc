#include "analyze/index.h"

#include "analyze/tokenizer.h"

#include "support/json.h"

#include <algorithm>
#include <regex>

namespace cmt::analyze
{

namespace
{

/** ChunkStore member calls that hand back untrusted RAM bytes. The
 *  method names are unique to the store (readChunk/readSlot), plus
 *  plain read() when the receiver is spelled like an untrusted
 *  store. Kept deliberately narrow: taint must start only at the
 *  paper's trust boundary, not at every read() in the tree. */
bool
isUntrustedReadCall(const std::string &name,
                    const std::string &qualifier)
{
    if (name == "readChunk" || name == "readSlot")
        return true;
    if (name != "read")
        return false;
    return qualifier == "ram_" || qualifier == "chunks_" ||
           qualifier == "store_" || qualifier == "untrusted_";
}

bool
isMutexLockType(const std::string &name)
{
    return name == "MutexLock";
}

/** Tokens that may sit between a declarator's `)` and its body. */
bool
isFnQualifierToken(const Token &t)
{
    if (t.kind == TokKind::kPunct)
        return t.text == "&" || t.text == "&&" || t.text == "->" ||
               t.text == "*" || t.text == "::" || t.text == "<" ||
               t.text == ">" || t.text == ">>" || t.text == "," ||
               t.text == "(" || t.text == ")";
    if (t.kind != TokKind::kIdentifier)
        return false;
    return true; // const, noexcept, override, final, trailing types
}

class Parser
{
  public:
    Parser(const std::vector<Token> &all, FileSummary &out)
        : all_(all), out_(out)
    {
        for (const Token &t : all_) {
            if (t.kind == TokKind::kComment ||
                t.kind == TokKind::kHeaderName)
                continue;
            if (t.inDirective)
                continue;
            code_.push_back(&t);
        }
    }

    void run()
    {
        scanDirectivesAndUses();
        parseDeclScope(0, code_.size(), /*className=*/"");
    }

  private:
    // ---------------------------------------------------------- raw
    // token-stream facts: includes, macros, identifier uses, allows

    void scanDirectivesAndUses()
    {
        static const std::regex allowRe(
            R"(cmt-analyze:\s*allow\(([^)]*)\))");
        // First code token per line, to tell directive-only comment
        // lines (which also cover the following line) from trailing
        // comments.
        std::map<int, std::size_t> firstCodeOnLine;
        for (const Token &t : all_) {
            if (t.kind == TokKind::kComment)
                continue;
            auto it = firstCodeOnLine.find(t.line);
            if (it == firstCodeOnLine.end() ||
                t.begin < it->second)
                firstCodeOnLine[t.line] = t.begin;
        }
        for (std::size_t i = 0; i < all_.size(); ++i) {
            const Token &t = all_[i];
            switch (t.kind) {
            case TokKind::kHeaderName: {
                if (t.text.size() < 2)
                    break;
                const std::string target =
                    t.text.substr(1, t.text.size() - 2);
                if (t.text[0] == '"') {
                    out_.quotedIncludes.push_back(target);
                    out_.quotedIncludeLines.push_back(t.line);
                } else {
                    out_.angledIncludes.push_back(target);
                }
                break;
            }
            case TokKind::kIdentifier: {
                if (!isKeyword(t.text))
                    out_.usedIdentifiers.emplace(t.text, t.line);
                // "#define NAME" declares NAME.
                if (t.inDirective && t.text == "define" && i >= 1 &&
                    all_[i - 1].kind == TokKind::kPunct &&
                    all_[i - 1].text == "#" &&
                    i + 1 < all_.size() &&
                    all_[i + 1].kind == TokKind::kIdentifier)
                    out_.declaredSymbols.insert(all_[i + 1].text);
                break;
            }
            case TokKind::kComment: {
                std::smatch m;
                if (!std::regex_search(t.text, m, allowRe))
                    break;
                const bool ownLine =
                    !firstCodeOnLine.contains(t.line) ||
                    firstCodeOnLine[t.line] >= t.begin;
                std::string rules = m[1].str();
                std::string rule;
                for (char c : rules + ",") {
                    if (c == ',' || c == ' ' || c == '\t') {
                        if (!rule.empty()) {
                            out_.allowLines[rule].insert(t.line);
                            if (ownLine)
                                out_.allowLines[rule].insert(
                                    t.line + 1);
                            rule.clear();
                        }
                    } else {
                        rule += c;
                    }
                }
                break;
            }
            default:
                break;
            }
        }
    }

    // ------------------------------------------------------ helpers

    const Token &tok(std::size_t i) const { return *code_[i]; }
    bool is(std::size_t i, const char *text) const
    {
        return i < code_.size() && tok(i).text == text;
    }
    bool isIdent(std::size_t i) const
    {
        return i < code_.size() &&
               tok(i).kind == TokKind::kIdentifier &&
               !isKeyword(tok(i).text);
    }

    /** Index of the token matching the bracket at @p i, or @p end. */
    std::size_t matchBracket(std::size_t i, std::size_t end) const
    {
        const std::string &open = tok(i).text;
        std::string close;
        if (open == "(")
            close = ")";
        else if (open == "{")
            close = "}";
        else if (open == "[")
            close = "]";
        else
            return i;
        int depth = 0;
        for (std::size_t j = i; j < end; ++j) {
            if (tok(j).text == open)
                ++depth;
            else if (tok(j).text == close && --depth == 0)
                return j;
        }
        return end;
    }

    /** Next `;` at bracket depth 0 (skipping balanced groups). */
    std::size_t findSemi(std::size_t i, std::size_t end) const
    {
        for (std::size_t j = i; j < end; ++j) {
            const std::string &s = tok(j).text;
            if (s == "(" || s == "{" || s == "[") {
                j = matchBracket(j, end);
                continue;
            }
            if (s == ";")
                return j;
        }
        return end;
    }

    /** Skip a `template<...>` parameter list; @p i sits on `<`. */
    std::size_t skipAngles(std::size_t i, std::size_t end) const
    {
        int depth = 0;
        for (std::size_t j = i; j < end; ++j) {
            const std::string &s = tok(j).text;
            if (s == "<")
                ++depth;
            else if (s == ">")
                --depth;
            else if (s == ">>")
                depth -= 2;
            else if (s == ";" || s == "{")
                return j; // malformed; bail at a boundary
            if (depth <= 0)
                return j + 1;
        }
        return end;
    }

    // ------------------------------------------- declaration scopes

    /**
     * Parse declarations in [i, end): namespace bodies, class
     * bodies, and the global scope all route here. Function bodies
     * do not — they get the statement parser below.
     */
    void parseDeclScope(std::size_t i, std::size_t end,
                        const std::string &className)
    {
        while (i < end) {
            const std::string &s = tok(i).text;
            if (s == ";" || s == "}") {
                ++i;
            } else if (s == "namespace") {
                i = parseNamespace(i, end);
            } else if (s == "class" || s == "struct" ||
                       s == "union") {
                i = parseClassLike(i, end);
            } else if (s == "enum") {
                i = parseEnum(i, end);
            } else if (s == "using") {
                i = parseUsing(i, end);
            } else if (s == "typedef") {
                i = parseTypedef(i, end);
            } else if (s == "template") {
                i = (i + 1 < end && is(i + 1, "<"))
                        ? skipAngles(i + 1, end)
                        : i + 1;
            } else if (s == "extern" && i + 2 < end &&
                       tok(i + 1).kind == TokKind::kString &&
                       is(i + 2, "{")) {
                // extern "C" { ... }: transparent scope.
                i += 3;
            } else if (s == "public" || s == "private" ||
                       s == "protected") {
                i = is(i + 1, ":") ? i + 2 : i + 1;
            } else if (s == "static_assert" || s == "friend" ||
                       s == "asm") {
                i = findSemi(i, end) + 1;
            } else {
                i = parseDeclaration(i, end, className);
            }
        }
    }

    std::size_t parseNamespace(std::size_t i, std::size_t end)
    {
        ++i; // namespace
        while (isIdent(i) || is(i, "::"))
            ++i;
        if (is(i, "=")) // namespace alias
            return findSemi(i, end) + 1;
        if (is(i, "{")) {
            const std::size_t close = matchBracket(i, end);
            parseDeclScope(i + 1, close, /*className=*/"");
            return close + 1;
        }
        return i;
    }

    std::size_t parseClassLike(std::size_t i, std::size_t end)
    {
        ++i; // class/struct/union
        std::string name;
        while (i < end) {
            const std::string &s = tok(i).text;
            if (s == "{" || s == ";" || s == ":")
                break;
            if (tok(i).kind == TokKind::kIdentifier &&
                !isKeyword(s)) {
                name = s;
                // A macro annotation (CMT_CAPABILITY("x")) between
                // the keyword and the name parses as ident+parens;
                // skipping the parens keeps the last plain
                // identifier as the class name.
                if (is(i + 1, "(")) {
                    i = matchBracket(i + 1, end) + 1;
                    continue;
                }
            }
            if (s == "final")
                name = name.empty() ? name : name; // keep prior name
            ++i;
        }
        if (is(i, ";")) { // forward declaration (or elaborated var)
            if (!name.empty())
                out_.declaredSymbols.insert(name);
            return i + 1;
        }
        if (is(i, ":")) { // base clause
            while (i < end && !is(i, "{"))
                ++i;
        }
        if (!is(i, "{"))
            return i + 1;
        if (!name.empty()) {
            out_.definedTypes.insert(name);
            out_.declaredSymbols.insert(name);
        }
        const std::size_t close = matchBracket(i, end);
        parseDeclScope(i + 1, close, name);
        return close + 1;
    }

    std::size_t parseEnum(std::size_t i, std::size_t end)
    {
        ++i; // enum
        if (is(i, "class") || is(i, "struct"))
            ++i;
        std::string name;
        if (isIdent(i)) {
            name = tok(i).text;
            ++i;
        }
        while (i < end && !is(i, "{") && !is(i, ";"))
            ++i; // underlying type
        if (is(i, ";")) {
            if (!name.empty())
                out_.declaredSymbols.insert(name);
            return i + 1;
        }
        if (!is(i, "{"))
            return i + 1;
        if (!name.empty()) {
            out_.definedTypes.insert(name);
            out_.declaredSymbols.insert(name);
        }
        const std::size_t close = matchBracket(i, end);
        // Enumerators: an identifier at the start or right after a
        // comma declares a value (initializer expressions skipped).
        bool expectName = true;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (expectName && isIdent(j)) {
                out_.declaredSymbols.insert(tok(j).text);
                expectName = false;
            } else if (is(j, ",")) {
                expectName = true;
            } else if (tok(j).text == "(" || tok(j).text == "{") {
                j = matchBracket(j, close);
            }
        }
        return close + 1;
    }

    std::size_t parseUsing(std::size_t i, std::size_t end)
    {
        if (is(i + 1, "namespace"))
            return findSemi(i, end) + 1;
        const std::size_t semi = findSemi(i, end);
        std::string declared;
        for (std::size_t j = i + 1; j < semi; ++j) {
            if (is(j, "="))
                break; // alias: name precedes '='
            if (isIdent(j))
                declared = tok(j).text;
        }
        if (!declared.empty())
            out_.declaredSymbols.insert(declared);
        return semi + 1;
    }

    std::size_t parseTypedef(std::size_t i, std::size_t end)
    {
        const std::size_t semi = findSemi(i, end);
        std::string declared;
        for (std::size_t j = i + 1; j < semi; ++j)
            if (isIdent(j))
                declared = tok(j).text;
        if (!declared.empty())
            out_.declaredSymbols.insert(declared);
        return semi + 1;
    }

    /**
     * A declaration that is not a type/alias: a function
     * (declaration or definition), a variable, or a macro
     * invocation. Detected by shape: an identifier followed by a
     * balanced paren group that is in declarator position (no `=`
     * seen yet) is a candidate; what follows the group decides.
     */
    std::size_t parseDeclaration(std::size_t i, std::size_t end,
                                 const std::string &className)
    {
        bool sawEquals = false;
        std::string lastIdent;
        std::size_t j = i;
        while (j < end) {
            const std::string &s = tok(j).text;
            if (s == ";") {
                if (!lastIdent.empty())
                    out_.declaredSymbols.insert(lastIdent);
                return j + 1;
            }
            if (s == "=") {
                sawEquals = true;
                ++j;
                continue;
            }
            if (s == "{") {
                // Brace initializer at declaration scope (no param
                // list seen): skip it and keep scanning to ';'.
                j = matchBracket(j, end) + 1;
                continue;
            }
            if (s == "(" && j > i && isIdent(j - 1) && !sawEquals) {
                const std::size_t close = matchBracket(j, end);
                std::size_t k = close + 1;
                while (k < end && isFnQualifierToken(tok(k)) &&
                       !is(k, "{"))
                    ++k;
                if (is(k, "{") || is(k, ":")) {
                    if (is(k, ":"))
                        k = skipCtorInitList(k, end);
                    if (is(k, "{"))
                        return parseFunctionDefinition(
                            i, j, close, k, end, className);
                }
                if (is(k, ";") || is(k, "=")) {
                    // Declaration (or `= default/delete/0`).
                    out_.declaredSymbols.insert(tok(j - 1).text);
                    return findSemi(k, end) + 1;
                }
                // Not a declarator after all (e.g. a macro in a
                // member decl); continue past the group.
                lastIdent = tok(j - 1).text;
                j = close + 1;
                continue;
            }
            if (isIdent(j))
                lastIdent = s;
            ++j;
        }
        return end;
    }

    /** @p i on ':' after a constructor's `)`. Returns the index of
     *  the body '{' (or @p end). */
    std::size_t skipCtorInitList(std::size_t i, std::size_t end) const
    {
        std::size_t j = i + 1;
        while (j < end) {
            // member name (possibly templated base)
            while (j < end && !is(j, "(") && !is(j, "{") &&
                   !is(j, ";"))
                ++j;
            if (j >= end || is(j, ";"))
                return j;
            if (is(j, "{") && !isInitItemBrace(j))
                return j; // body
            j = matchBracket(j, end) + 1;
            if (is(j, ","))
                ++j;
            else
                return j; // body '{' (or malformed)
        }
        return end;
    }

    /** In an init list, `name{...}` braces belong to the item; a
     *  brace right after ',' or ':' cannot (that is the body). */
    bool isInitItemBrace(std::size_t j) const
    {
        return j > 0 && isIdent(j - 1);
    }

    std::size_t parseFunctionDefinition(std::size_t declBegin,
                                        std::size_t parenOpen,
                                        std::size_t parenClose,
                                        std::size_t bodyOpen,
                                        std::size_t end,
                                        const std::string &className)
    {
        FunctionInfo fn;
        // Name chain: ident ( :: ident )* ending just before '('.
        std::size_t nameBegin = parenOpen - 1;
        fn.name = tok(nameBegin).text;
        fn.nameLine = tok(nameBegin).line;
        while (nameBegin >= 2 && is(nameBegin - 1, "::") &&
               isIdent(nameBegin - 2))
            nameBegin -= 2;
        fn.className = className;
        if (nameBegin + 1 <= parenOpen - 1) // qualified: A::name
            fn.className = tok(nameBegin).text;
        // Destructor: ~ belongs to the name.
        if (nameBegin >= 1 && is(nameBegin - 1, "~"))
            --nameBegin;

        fn.returnType = computeReturnType(declBegin, nameBegin);
        fn.returnsVoid =
            fn.returnType.empty() || fn.returnType == "void";
        fn.hasMutableSpanParam =
            computeMutableSpan(parenOpen + 1, parenClose);
        fn.bodyOpenLine = tok(bodyOpen).line;
        const std::size_t bodyClose = matchBracket(bodyOpen, end);
        fn.endLine = bodyClose < end ? tok(bodyClose).line
                                     : tok(end - 1).line;
        out_.declaredSymbols.insert(fn.name);

        // The ctor init list runs before the body.
        if (is(parenClose + 1, ":"))
            scanExpr(parenClose + 2, bodyOpen, fn.events,
                     /*discardAt=*/code_.size());
        parseStmts(bodyOpen + 1, bodyClose, fn.events);
        out_.functions.push_back(std::move(fn));
        return bodyClose + 1;
    }

    std::string computeReturnType(std::size_t declBegin,
                                  std::size_t nameBegin) const
    {
        std::string type;
        for (std::size_t j = declBegin; j < nameBegin; ++j) {
            const std::string &s = tok(j).text;
            if (s == "[") { // attribute: skip balanced
                j = matchBracket(j, nameBegin);
                continue;
            }
            if (s == "inline" || s == "static" || s == "constexpr" ||
                s == "consteval" || s == "virtual" ||
                s == "explicit" || s == "friend" || s == "extern" ||
                s == "~")
                continue;
            if (!type.empty())
                type += ' ';
            type += s;
        }
        // Constructors/destructors yield "" (treated as void:
        // nothing flows out through the return value).
        return type;
    }

    bool computeMutableSpan(std::size_t i, std::size_t end) const
    {
        for (std::size_t j = i; j < end; ++j) {
            if (tok(j).text != "span" || !is(j + 1, "<"))
                continue;
            bool isConst = false;
            bool isBytes = false;
            int depth = 0;
            for (std::size_t k = j + 1; k < end; ++k) {
                const std::string &s = tok(k).text;
                if (s == "<")
                    ++depth;
                else if (s == ">")
                    --depth;
                else if (s == ">>")
                    depth -= 2;
                else if (s == "const")
                    isConst = true;
                else if (s == "uint8_t" || s == "byte" ||
                         s == "Byte")
                    isBytes = true;
                if (depth <= 0)
                    break;
            }
            if (isBytes && !isConst)
                return true;
        }
        return false;
    }

    // ------------------------------------------- statement parsing

    /** Parse statements in [i, end); RAII locks declared directly in
     *  this block release (kUnlock) when it closes. */
    void parseStmts(std::size_t i, std::size_t end,
                    std::vector<Event> &ev)
    {
        std::vector<std::string> blockLocks;
        while (i < end)
            i = parseOneStmt(i, end, ev, &blockLocks);
        for (auto it = blockLocks.rbegin(); it != blockLocks.rend();
             ++it) {
            Event e;
            e.kind = Event::Kind::kUnlock;
            e.name = *it;
            e.line = end < code_.size() ? tok(end).line : 0;
            ev.push_back(std::move(e));
        }
    }

    /** One statement (compound, control, or simple). Returns the
     *  index just past it. */
    std::size_t parseOneStmt(std::size_t i, std::size_t end,
                             std::vector<Event> &ev,
                             std::vector<std::string> *blockLocks)
    {
        if (i >= end)
            return end;
        const std::string &s = tok(i).text;

        if (s == ";")
            return i + 1;
        if (s == "{") {
            const std::size_t close = matchBracket(i, end);
            parseStmts(i + 1, close, ev);
            return close + 1;
        }
        if (s == "if") {
            std::size_t j = i + 1;
            if (is(j, "constexpr"))
                ++j;
            if (!is(j, "("))
                return i + 1;
            const std::size_t close = matchBracket(j, end);
            scanExpr(j + 1, close, ev, code_.size());
            push(ev, Event::Kind::kIfBegin, tok(i).line);
            std::size_t next =
                parseOneStmt(close + 1, end, ev, nullptr);
            if (next < end && is(next, "else")) {
                push(ev, Event::Kind::kElseBegin, tok(next).line);
                next = parseOneStmt(next + 1, end, ev, nullptr);
            }
            push(ev, Event::Kind::kIfEnd, tok(i).line);
            return next;
        }
        if (s == "while" || s == "for") {
            std::size_t j = i + 1;
            if (!is(j, "("))
                return i + 1;
            const std::size_t close = matchBracket(j, end);
            scanExpr(j + 1, close, ev, code_.size());
            push(ev, Event::Kind::kMaybeBegin, tok(i).line);
            const std::size_t next =
                parseOneStmt(close + 1, end, ev, nullptr);
            push(ev, Event::Kind::kMaybeEnd, tok(i).line);
            return next;
        }
        if (s == "do") {
            // The body runs at least once: parse it as executed,
            // then consume `while (...);`.
            std::size_t next = parseOneStmt(i + 1, end, ev, nullptr);
            if (next < end && is(next, "while") &&
                is(next + 1, "(")) {
                const std::size_t close =
                    matchBracket(next + 1, end);
                scanExpr(next + 2, close, ev, code_.size());
                next = close + 1;
                if (next < end && is(next, ";"))
                    ++next;
            }
            return next;
        }
        if (s == "switch") {
            std::size_t j = i + 1;
            if (!is(j, "("))
                return i + 1;
            const std::size_t close = matchBracket(j, end);
            scanExpr(j + 1, close, ev, code_.size());
            push(ev, Event::Kind::kMaybeBegin, tok(i).line);
            std::size_t next = close + 1;
            if (next < end && is(next, "{")) {
                const std::size_t bodyClose =
                    matchBracket(next, end);
                parseStmts(next + 1, bodyClose, ev);
                next = bodyClose + 1;
            }
            push(ev, Event::Kind::kMaybeEnd, tok(i).line);
            return next;
        }
        if (s == "case") {
            std::size_t j = i + 1;
            while (j < end && !is(j, ":"))
                ++j;
            return j + 1;
        }
        if (s == "default" && is(i + 1, ":"))
            return i + 2;
        if (s == "return") {
            const std::size_t semi = findSemi(i + 1, end);
            scanExpr(i + 1, semi, ev, code_.size());
            push(ev, Event::Kind::kReturn, tok(i).line);
            return semi + 1;
        }
        if (s == "throw") {
            const std::size_t semi = findSemi(i + 1, end);
            scanExpr(i + 1, semi, ev, code_.size());
            push(ev, Event::Kind::kThrow, tok(i).line);
            return semi + 1;
        }
        if (s == "try") {
            std::size_t next = parseOneStmt(i + 1, end, ev, nullptr);
            while (next < end && is(next, "catch")) {
                std::size_t j = next + 1;
                if (is(j, "("))
                    j = matchBracket(j, end) + 1;
                push(ev, Event::Kind::kMaybeBegin, tok(next).line);
                next = parseOneStmt(j, end, ev, nullptr);
                push(ev, Event::Kind::kMaybeEnd, tok(next - 1).line);
            }
            return next;
        }
        if (s == "break" || s == "continue" || s == "goto")
            return findSemi(i, end) + 1;

        // Simple statement: expression or local declaration.
        const std::size_t semi = findSemi(i, end);
        scanSimpleStmt(i, semi, ev, blockLocks);
        return semi + 1;
    }

    void push(std::vector<Event> &ev, Event::Kind kind, int line)
    {
        Event e;
        e.kind = kind;
        e.line = line;
        ev.push_back(std::move(e));
    }

    /**
     * A simple statement [i, semi). Handles the MutexLock RAII
     * pattern, detects a discarded top-level call, and otherwise
     * scans for events.
     */
    void scanSimpleStmt(std::size_t i, std::size_t semi,
                        std::vector<Event> &ev,
                        std::vector<std::string> *blockLocks)
    {
        // `[cmt::]MutexLock name(expr)` / `{expr}`.
        for (std::size_t j = i; j + 2 < semi; ++j) {
            if (!isMutexLockType(tok(j).text) || !isIdent(j + 1))
                continue;
            if (!is(j + 2, "(") && !is(j + 2, "{"))
                continue;
            const std::size_t close = matchBracket(j + 2, semi);
            std::string expr;
            for (std::size_t k = j + 3; k < close; ++k) {
                if (!expr.empty() && isIdent(k) && isIdent(k - 1))
                    expr += ' ';
                expr += tok(k).text;
            }
            Event e;
            e.kind = Event::Kind::kLock;
            e.name = expr;
            e.line = tok(j).line;
            ev.push_back(std::move(e));
            if (blockLocks != nullptr) {
                blockLocks->push_back(expr);
            } else {
                // Unbraced substatement: the lock dies immediately.
                Event u;
                u.kind = Event::Kind::kUnlock;
                u.name = expr;
                u.line = tok(j).line;
                ev.push_back(std::move(u));
            }
            return;
        }

        // Discarded call: the whole statement is `chain(...)`.
        std::size_t discardAt = code_.size();
        std::size_t k = i;
        while (k + 1 < semi && isIdent(k) &&
               (is(k + 1, "::") || is(k + 1, ".") ||
                is(k + 1, "->")))
            k += 2;
        if (k + 1 < semi && isIdent(k) && is(k + 1, "(") &&
            matchBracket(k + 1, semi) == semi - 1)
            discardAt = k;

        scanExpr(i, semi, ev, discardAt);
    }

    /**
     * Scan an expression region for calls/reads/verifies. Braced
     * subexpressions (lambda bodies, init lists) parse as 0-or-more
     * regions — a lambda may never run. @p discardAt marks the one
     * call token whose result the statement drops.
     */
    void scanExpr(std::size_t i, std::size_t end,
                  std::vector<Event> &ev, std::size_t discardAt)
    {
        for (std::size_t j = i; j < end; ++j) {
            if (is(j, "{")) {
                const std::size_t close = matchBracket(j, end);
                push(ev, Event::Kind::kMaybeBegin, tok(j).line);
                parseStmts(j + 1, close, ev);
                push(ev, Event::Kind::kMaybeEnd, tok(j).line);
                j = close;
                continue;
            }
            if (!isIdent(j) || !is(j + 1, "("))
                continue;
            Event e;
            e.name = tok(j).text;
            e.line = tok(j).line;
            if (j >= 2 &&
                (is(j - 1, "::") || is(j - 1, ".") ||
                 is(j - 1, "->")) &&
                isIdent(j - 2))
                e.qualifier = tok(j - 2).text;
            if (e.name == "verify" || e.name == "verifyChain" ||
                e.name == "verifyChainFirstFailure")
                e.kind = Event::Kind::kVerify;
            else if (isUntrustedReadCall(e.name, e.qualifier))
                e.kind = Event::Kind::kRead;
            else
                e.kind = Event::Kind::kCall;
            e.discarded = (j == discardAt);
            ev.push_back(std::move(e));
        }
    }

    const std::vector<Token> &all_;
    std::vector<const Token *> code_;
    FileSummary &out_;
};

} // namespace

FileSummary
summarizeSource(const std::string &path, const std::string &contents)
{
    FileSummary out;
    out.path = path;
    out.contentHash = contentHash(contents);
    const std::vector<Token> tokens = tokenize(contents);
    Parser(tokens, out).run();
    return out;
}

std::uint64_t
contentHash(const std::string &contents)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : contents) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
allowedAt(const FileSummary &file, const std::string &rule, int line)
{
    auto it = file.allowLines.find(rule);
    return it != file.allowLines.end() && it->second.contains(line);
}

// ------------------------------------------------- cache round-trip

namespace
{

std::string
hashToHex(std::uint64_t h)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

bool
hexToHash(const std::string &s, std::uint64_t *out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t h = 0;
    for (char c : s) {
        h <<= 4;
        if (c >= '0' && c <= '9')
            h |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            h |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    *out = h;
    return true;
}

Json
eventToJson(const Event &e)
{
    Json row = Json::array();
    row.push(static_cast<int>(e.kind));
    row.push(e.name);
    row.push(e.qualifier);
    row.push(e.line);
    row.push(e.discarded ? 1 : 0);
    return row;
}

bool
eventFromJson(const Json &row, Event *out)
{
    if (!row.isArray() || row.size() != 5)
        return false;
    if (!row.at(0).isNumber() || !row.at(1).isString() ||
        !row.at(2).isString() || !row.at(3).isNumber() ||
        !row.at(4).isNumber())
        return false;
    const int kind = static_cast<int>(row.at(0).asNumber());
    if (kind < 0 ||
        kind > static_cast<int>(Event::Kind::kUnlock))
        return false;
    out->kind = static_cast<Event::Kind>(kind);
    out->name = row.at(1).asString();
    out->qualifier = row.at(2).asString();
    out->line = static_cast<int>(row.at(3).asNumber());
    out->discarded = row.at(4).asNumber() != 0;
    return true;
}

Json
stringsToJson(const std::set<std::string> &strings)
{
    Json arr = Json::array();
    for (const std::string &s : strings)
        arr.push(s);
    return arr;
}

bool
stringsFromJson(const Json &arr, std::set<std::string> *out)
{
    if (!arr.isArray())
        return false;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!arr.at(i).isString())
            return false;
        out->insert(arr.at(i).asString());
    }
    return true;
}

} // namespace

std::string
summaryToJson(const FileSummary &summary)
{
    Json doc = Json::object();
    doc.set("schema", kIndexSchemaVersion);
    doc.set("path", summary.path);
    doc.set("hash", hashToHex(summary.contentHash));

    Json qinc = Json::array();
    Json qlines = Json::array();
    for (std::size_t i = 0; i < summary.quotedIncludes.size(); ++i) {
        qinc.push(summary.quotedIncludes[i]);
        qlines.push(i < summary.quotedIncludeLines.size()
                        ? summary.quotedIncludeLines[i]
                        : 0);
    }
    doc.set("quoted_includes", std::move(qinc));
    doc.set("quoted_include_lines", std::move(qlines));
    Json ainc = Json::array();
    for (const std::string &s : summary.angledIncludes)
        ainc.push(s);
    doc.set("angled_includes", std::move(ainc));

    doc.set("defined_types", stringsToJson(summary.definedTypes));
    doc.set("declared", stringsToJson(summary.declaredSymbols));

    Json used = Json::array();
    for (const auto &[name, line] : summary.usedIdentifiers) {
        Json row = Json::array();
        row.push(name);
        row.push(line);
        used.push(std::move(row));
    }
    doc.set("used", std::move(used));

    Json fns = Json::array();
    for (const FunctionInfo &fn : summary.functions) {
        Json f = Json::object();
        f.set("name", fn.name);
        f.set("class", fn.className);
        f.set("name_line", fn.nameLine);
        f.set("body_line", fn.bodyOpenLine);
        f.set("end_line", fn.endLine);
        f.set("returns_void", fn.returnsVoid);
        f.set("return_type", fn.returnType);
        f.set("mutable_span", fn.hasMutableSpanParam);
        Json ev = Json::array();
        for (const Event &e : fn.events)
            ev.push(eventToJson(e));
        f.set("events", std::move(ev));
        fns.push(std::move(f));
    }
    doc.set("functions", std::move(fns));

    Json allows = Json::array();
    for (const auto &[rule, lines] : summary.allowLines) {
        Json row = Json::array();
        row.push(rule);
        Json ls = Json::array();
        for (int line : lines)
            ls.push(line);
        row.push(std::move(ls));
        allows.push(std::move(row));
    }
    doc.set("allows", std::move(allows));
    return doc.dump();
}

bool
summaryFromJson(const std::string &text, FileSummary *out)
{
    Json doc;
    if (!Json::parse(text, &doc) || !doc.isObject())
        return false;
    const Json *schema = doc.find("schema");
    if (schema == nullptr || !schema->isNumber() ||
        static_cast<int>(schema->asNumber()) != kIndexSchemaVersion)
        return false;

    FileSummary s;
    const Json *path = doc.find("path");
    const Json *hash = doc.find("hash");
    if (path == nullptr || !path->isString() || hash == nullptr ||
        !hash->isString())
        return false;
    s.path = path->asString();
    if (!hexToHash(hash->asString(), &s.contentHash))
        return false;

    const Json *qinc = doc.find("quoted_includes");
    const Json *qlines = doc.find("quoted_include_lines");
    const Json *ainc = doc.find("angled_includes");
    if (qinc == nullptr || !qinc->isArray() || qlines == nullptr ||
        !qlines->isArray() || qlines->size() != qinc->size() ||
        ainc == nullptr || !ainc->isArray())
        return false;
    for (std::size_t i = 0; i < qinc->size(); ++i) {
        if (!qinc->at(i).isString() || !qlines->at(i).isNumber())
            return false;
        s.quotedIncludes.push_back(qinc->at(i).asString());
        s.quotedIncludeLines.push_back(
            static_cast<int>(qlines->at(i).asNumber()));
    }
    for (std::size_t i = 0; i < ainc->size(); ++i) {
        if (!ainc->at(i).isString())
            return false;
        s.angledIncludes.push_back(ainc->at(i).asString());
    }

    const Json *types = doc.find("defined_types");
    const Json *decls = doc.find("declared");
    if (types == nullptr || !stringsFromJson(*types, &s.definedTypes))
        return false;
    if (decls == nullptr ||
        !stringsFromJson(*decls, &s.declaredSymbols))
        return false;

    const Json *used = doc.find("used");
    if (used == nullptr || !used->isArray())
        return false;
    for (std::size_t i = 0; i < used->size(); ++i) {
        const Json &row = used->at(i);
        if (!row.isArray() || row.size() != 2 ||
            !row.at(0).isString() || !row.at(1).isNumber())
            return false;
        s.usedIdentifiers.emplace(
            row.at(0).asString(),
            static_cast<int>(row.at(1).asNumber()));
    }

    const Json *fns = doc.find("functions");
    if (fns == nullptr || !fns->isArray())
        return false;
    for (std::size_t i = 0; i < fns->size(); ++i) {
        const Json &f = fns->at(i);
        if (!f.isObject())
            return false;
        FunctionInfo fn;
        const Json *name = f.find("name");
        const Json *cls = f.find("class");
        const Json *nameLine = f.find("name_line");
        const Json *bodyLine = f.find("body_line");
        const Json *endLine = f.find("end_line");
        const Json *rvoid = f.find("returns_void");
        const Json *rtype = f.find("return_type");
        const Json *span = f.find("mutable_span");
        const Json *ev = f.find("events");
        if (name == nullptr || !name->isString() || cls == nullptr ||
            !cls->isString() || nameLine == nullptr ||
            !nameLine->isNumber() || bodyLine == nullptr ||
            !bodyLine->isNumber() || endLine == nullptr ||
            !endLine->isNumber() || rvoid == nullptr ||
            !rvoid->isBool() || rtype == nullptr ||
            !rtype->isString() || span == nullptr ||
            !span->isBool() || ev == nullptr || !ev->isArray())
            return false;
        fn.name = name->asString();
        fn.className = cls->asString();
        fn.nameLine = static_cast<int>(nameLine->asNumber());
        fn.bodyOpenLine = static_cast<int>(bodyLine->asNumber());
        fn.endLine = static_cast<int>(endLine->asNumber());
        fn.returnsVoid = rvoid->asBool();
        fn.returnType = rtype->asString();
        fn.hasMutableSpanParam = span->asBool();
        for (std::size_t j = 0; j < ev->size(); ++j) {
            Event e;
            if (!eventFromJson(ev->at(j), &e))
                return false;
            fn.events.push_back(std::move(e));
        }
        s.functions.push_back(std::move(fn));
    }

    const Json *allows = doc.find("allows");
    if (allows == nullptr || !allows->isArray())
        return false;
    for (std::size_t i = 0; i < allows->size(); ++i) {
        const Json &row = allows->at(i);
        if (!row.isArray() || row.size() != 2 ||
            !row.at(0).isString() || !row.at(1).isArray())
            return false;
        std::set<int> lines;
        for (std::size_t j = 0; j < row.at(1).size(); ++j) {
            if (!row.at(1).at(j).isNumber())
                return false;
            lines.insert(
                static_cast<int>(row.at(1).at(j).asNumber()));
        }
        s.allowLines.emplace(row.at(0).asString(),
                             std::move(lines));
    }

    *out = std::move(s);
    return true;
}

} // namespace cmt::analyze
