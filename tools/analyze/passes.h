/**
 * @file
 * The four whole-program rule passes of cmt_analyze.
 *
 * Each pass consumes the per-file summaries (analyze/index.h) and
 * returns diagnostics; none re-reads source. See DESIGN.md §10 for
 * the architecture and the rule semantics, and
 * tests/tools/fixtures/analyze/ for the pinned behavior:
 *
 *  - trust-boundary: a function in src/tree/ or src/verify/ that
 *    reads untrusted ChunkStore bytes must reach a verify call on
 *    every path before data can leave (return value or mutable byte
 *    span). The paper's verify-before-use invariant as a taint rule.
 *  - lock-order: MutexLock acquisition order, propagated over call
 *    edges, must be acyclic (deadlock freedom ahead of cmt_served).
 *  - error-discipline: a discarded call to a bool/Status verify or
 *    persistence API silently swallows an integrity verdict.
 *  - include-hygiene: unused quoted includes, and symbols reached
 *    only through transitive includes.
 *
 * Suppression: `// cmt-analyze: allow(<rule>)` on the offending line
 * or the line above; for the two function-scoped rules the directive
 * may sit anywhere from just above the declarator to the opening
 * brace.
 */

#ifndef CMT_TOOLS_ANALYZE_PASSES_H
#define CMT_TOOLS_ANALYZE_PASSES_H

#include "analyze/index.h"

#include <string>
#include <vector>

namespace cmt::analyze
{

struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule; ///< pass name, or "io" for read failures
    std::string message;
};

/** Stable list of pass names, the `--rule` vocabulary. */
std::vector<std::string> ruleNames();

std::vector<Diagnostic>
trustBoundaryPass(const std::vector<FileSummary> &files);
std::vector<Diagnostic>
lockOrderPass(const std::vector<FileSummary> &files);
std::vector<Diagnostic>
errorDisciplinePass(const std::vector<FileSummary> &files);
std::vector<Diagnostic>
includeHygienePass(const std::vector<FileSummary> &files);

/** Run @p rules (all when empty) and sort by file/line/rule. */
std::vector<Diagnostic>
runPasses(const std::vector<FileSummary> &files,
          const std::vector<std::string> &rules);

} // namespace cmt::analyze

#endif // CMT_TOOLS_ANALYZE_PASSES_H
