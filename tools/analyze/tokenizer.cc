#include "analyze/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>

namespace cmt::analyze
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

/** Valid encoding prefix for a string or char literal. */
bool
isLiteralPrefix(const std::string &word)
{
    return word == "u8" || word == "u" || word == "U" || word == "L";
}

/** Multi-char punctuation, longest first so maximal munch wins. */
const std::array<const char *, 36> &
punctuators()
{
    static const std::array<const char *, 36> ops = {
        "<<=", ">>=", "->*", "...", "<=>",          // 3 chars
        "::", "->", "++", "--", "<<", ">>", "<=",   // 2 chars
        ">=", "==", "!=", "&&", "||", "+=", "-=",
        "*=", "/=", "%=", "&=", "|=", "^=", ".*",
        "##",
        "{", "}", "(", ")", "[", "]", ";", ",", "#", // 1 char (rest
                                                     // lex singly)
    };
    return ops;
}

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    std::vector<Token> run()
    {
        while (pos_ < src_.size())
            lexOne();
        return std::move(out_);
    }

  private:
    char cur() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
    char peek(std::size_t n = 1) const
    {
        return pos_ + n < src_.size() ? src_[pos_ + n] : '\0';
    }

    void advance()
    {
        if (src_[pos_] == '\n') {
            ++line_;
            atLineStart_ = true;
            // A directive ends at an unescaped newline.
            inDirective_ = false;
        }
        ++pos_;
    }

    void emit(TokKind kind, std::size_t begin, int line)
    {
        Token t;
        t.kind = kind;
        t.begin = begin;
        t.end = pos_;
        t.line = line;
        t.text = src_.substr(begin, pos_ - begin);
        t.inDirective = inDirective_;
        out_.push_back(std::move(t));
    }

    void lexOne()
    {
        const char c = cur();

        // Line splices: a backslash-newline vanishes everywhere (the
        // preprocessor removes it before tokenization), keeping
        // directives alive across physical lines.
        if (c == '\\' && (peek() == '\n' ||
                          (peek() == '\r' && peek(2) == '\n'))) {
            const bool directive = inDirective_;
            advance(); // backslash
            if (cur() == '\r')
                advance();
            advance(); // newline (clears inDirective_)
            inDirective_ = directive;
            return;
        }

        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            return;
        }

        const std::size_t begin = pos_;
        const int line = line_;

        if (c == '/' && peek() == '/') {
            while (pos_ < src_.size() && cur() != '\n')
                advance();
            emit(TokKind::kComment, begin, line);
            atLineStart_ = false;
            return;
        }
        if (c == '/' && peek() == '*') {
            advance();
            advance();
            while (pos_ < src_.size() &&
                   !(cur() == '*' && peek() == '/'))
                advance();
            if (pos_ < src_.size()) {
                advance();
                advance();
            }
            emit(TokKind::kComment, begin, line);
            // A block comment is whitespace; it does not consume the
            // line-start property (``  /* x */ #include`` is a
            // directive).
            return;
        }

        if (c == '#' && atLineStart_ && !inDirective_) {
            inDirective_ = true;
            advance();
            if (cur() == '#')
                advance();
            atLineStart_ = false;
            emit(TokKind::kPunct, begin, line);
            // An #include / #include_next target is a header-name,
            // not an expression: <stdio.h> must not lex as
            // less-than, identifier, dot, greater-than.
            lexPossibleHeaderName();
            return;
        }

        if (isIdentStart(c)) {
            lexIdentifierOrPrefixedLiteral();
            atLineStart_ = false;
            return;
        }

        if (isDigit(c) || (c == '.' && isDigit(peek()))) {
            lexPpNumber();
            atLineStart_ = false;
            return;
        }

        if (c == '"') {
            lexString(begin, line);
            atLineStart_ = false;
            return;
        }
        if (c == '\'') {
            lexCharLiteral(begin, line);
            atLineStart_ = false;
            return;
        }

        lexPunct(begin, line);
        atLineStart_ = false;
    }

    /** After a '#': if the directive is an include, lex its target as
     *  one kHeaderName token. */
    void lexPossibleHeaderName()
    {
        std::size_t p = pos_;
        while (p < src_.size() &&
               (src_[p] == ' ' || src_[p] == '\t'))
            ++p;
        std::size_t kw = p;
        while (kw < src_.size() && isIdentChar(src_[kw]))
            ++kw;
        const std::string name = src_.substr(p, kw - p);
        if (name != "include" && name != "include_next")
            return;
        // Emit the directive keyword.
        while (pos_ < kw)
            advance();
        emit(TokKind::kIdentifier, p, line_);
        while (cur() == ' ' || cur() == '\t')
            advance();
        const char open = cur();
        if (open != '<' && open != '"')
            return; // computed include (macro); lex normally
        const char close = open == '<' ? '>' : '"';
        const std::size_t begin = pos_;
        const int line = line_;
        advance();
        while (pos_ < src_.size() && cur() != close && cur() != '\n')
            advance();
        if (cur() == close)
            advance();
        emit(TokKind::kHeaderName, begin, line);
    }

    void lexIdentifierOrPrefixedLiteral()
    {
        const std::size_t begin = pos_;
        const int line = line_;
        while (isIdentChar(cur()))
            advance();
        std::string word = src_.substr(begin, pos_ - begin);

        // Encoding prefixes glue onto the following literal: L'x' is
        // one char literal, not an identifier and a separator; u8R"("
        // opens a raw string.
        const bool rawCandidate =
            (word == "R" || ((word.size() >= 2 && word.back() == 'R') &&
                             isLiteralPrefix(
                                 word.substr(0, word.size() - 1))));
        if (cur() == '"' && (isLiteralPrefix(word) || rawCandidate)) {
            if (word.back() == 'R')
                lexRawStringTail(begin, line);
            else
                lexString(begin, line, /*resume=*/true);
            return;
        }
        if (cur() == '\'' && isLiteralPrefix(word)) {
            lexCharLiteral(begin, line, /*resume=*/true);
            return;
        }
        emit(TokKind::kIdentifier, begin, line);
    }

    /**
     * pp-number: digits, identifier chars, '.', exponent signs, and
     * digit separators. A separator belongs to the number only when
     * followed by an alphanumeric character, exactly as the grammar
     * says — so 1'000'000 is one token and the quote in
     * `f(1, 'x')` still opens a char literal.
     */
    void lexPpNumber()
    {
        const std::size_t begin = pos_;
        const int line = line_;
        advance(); // first digit or '.'
        while (pos_ < src_.size()) {
            const char c = cur();
            if (isIdentChar(c) || c == '.') {
                const char prev = src_[pos_ - 1];
                advance();
                // e+3 / p-2 exponents continue the number.
                if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                    (cur() == '+' || cur() == '-') &&
                    (prev == '.' || isIdentChar(prev)))
                    advance();
                continue;
            }
            if (c == '\'' && std::isalnum(static_cast<unsigned char>(
                                 peek()))) {
                advance(); // separator
                continue;
            }
            break;
        }
        emit(TokKind::kNumber, begin, line);
    }

    /** @p resume: begin/line already cover an encoding prefix. */
    void lexString(std::size_t begin, int line, bool resume = false)
    {
        if (!resume) {
            begin = pos_;
            line = line_;
        }
        advance(); // opening quote
        while (pos_ < src_.size() && cur() != '"' && cur() != '\n') {
            if (cur() == '\\' && pos_ + 1 < src_.size())
                advance();
            advance();
        }
        if (cur() == '"')
            advance();
        emit(TokKind::kString, begin, line);
    }

    /** Raw string: pos_ sits on the '"' after an R prefix. */
    void lexRawStringTail(std::size_t begin, int line)
    {
        advance(); // opening quote
        std::string delim;
        while (pos_ < src_.size() && cur() != '(' && cur() != '\n' &&
               delim.size() < 16)
            delim += src_[pos_], advance();
        if (cur() != '(') { // malformed; treat as plain string tail
            emit(TokKind::kString, begin, line);
            return;
        }
        advance();
        const std::string terminator = ")" + delim + "\"";
        while (pos_ < src_.size() &&
               src_.compare(pos_, terminator.size(), terminator) != 0)
            advance();
        for (std::size_t i = 0;
             i < terminator.size() && pos_ < src_.size(); ++i)
            advance();
        emit(TokKind::kString, begin, line);
    }

    void lexCharLiteral(std::size_t begin, int line,
                        bool resume = false)
    {
        if (!resume) {
            begin = pos_;
            line = line_;
        }
        advance(); // opening quote
        while (pos_ < src_.size() && cur() != '\'' && cur() != '\n') {
            if (cur() == '\\' && pos_ + 1 < src_.size())
                advance();
            advance();
        }
        if (cur() == '\'')
            advance();
        emit(TokKind::kCharLiteral, begin, line);
    }

    void lexPunct(std::size_t begin, int line)
    {
        for (const char *op : punctuators()) {
            const std::size_t n = std::char_traits<char>::length(op);
            if (src_.compare(pos_, n, op) == 0) {
                for (std::size_t i = 0; i < n; ++i)
                    advance();
                emit(TokKind::kPunct, begin, line);
                return;
            }
        }
        advance();
        emit(TokKind::kPunct, begin, line);
    }

    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool atLineStart_ = true;
    bool inDirective_ = false;
    std::vector<Token> out_;
};

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    return Lexer(source).run();
}

std::string
scrubSource(const std::string &source, bool keepComments)
{
    std::string out = source;
    const std::vector<Token> tokens = tokenize(source);
    const auto blank = [&out](std::size_t from, std::size_t to) {
        for (std::size_t i = from; i < to && i < out.size(); ++i) {
            if (out[i] != '\n')
                out[i] = ' ';
        }
    };
    for (const Token &t : tokens) {
        switch (t.kind) {
        case TokKind::kComment:
            if (!keepComments)
                blank(t.begin, t.end);
            break;
        case TokKind::kString:
        case TokKind::kCharLiteral: {
            // Keep the delimiting quotes (and blank everything else,
            // prefix included) so line shape survives for regexes.
            const std::size_t open = out.find(
                t.kind == TokKind::kString ? '"' : '\'', t.begin);
            if (open == std::string::npos || open >= t.end)
                break;
            const bool raw =
                t.kind == TokKind::kString && open > t.begin &&
                out[open - 1] == 'R';
            if (raw) {
                blank(t.begin, t.end); // R"(...)" vanishes entirely
            } else {
                blank(t.begin, open);
                blank(open + 1, t.end > t.begin + 1 ? t.end - 1
                                                    : t.end);
            }
            break;
        }
        default:
            break;
        }
    }
    return out;
}

bool
isKeyword(const std::string &word)
{
    static const std::set<std::string> keywords = {
        "alignas",   "alignof",   "asm",        "auto",
        "bool",      "break",     "case",       "catch",
        "char",      "class",     "co_await",   "co_return",
        "co_yield",  "concept",   "const",      "consteval",
        "constexpr", "constinit", "const_cast", "continue",
        "decltype",  "default",   "delete",     "do",
        "double",    "dynamic_cast", "else",    "enum",
        "explicit",  "export",    "extern",     "false",
        "float",     "for",       "friend",     "goto",
        "if",        "inline",    "int",        "long",
        "mutable",   "namespace", "new",        "noexcept",
        "nullptr",   "operator",  "private",    "protected",
        "public",    "register",  "reinterpret_cast",
        "requires",  "return",    "short",      "signed",
        "sizeof",    "static",    "static_assert",
        "static_cast", "struct",  "switch",     "template",
        "this",      "thread_local", "throw",   "true",
        "try",       "typedef",   "typeid",     "typename",
        "union",     "unsigned",  "using",      "virtual",
        "void",      "volatile",  "wchar_t",    "while",
    };
    return keywords.contains(word);
}

} // namespace cmt::analyze
