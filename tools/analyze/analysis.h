/**
 * @file
 * cmt_analyze engine: walk the tree, build (or load) the symbol
 * index, run the rule passes.
 *
 * Indexing is per-file and content-addressed, so `--cache-dir`
 * makes warm runs skip tokenizing/parsing unchanged files: each
 * summary persists as one JSON entry keyed by its repo-relative
 * path, validated against the file's FNV-1a hash and the index
 * schema version before reuse (stale or corrupt entries are silent
 * misses). CI caches the directory across runs keyed on source
 * hashes.
 */

#ifndef CMT_TOOLS_ANALYZE_ANALYSIS_H
#define CMT_TOOLS_ANALYZE_ANALYSIS_H

#include "analyze/passes.h"

#include <string>
#include <vector>

namespace cmt::analyze
{

struct AnalyzeOptions
{
    /** Repo root; paths report relative to it. */
    std::string root = ".";
    /** Files/directories to index. Empty: src/ tools/ bench/ under
     *  the root (the trees the symbol index is defined over). */
    std::vector<std::string> paths;
    /** Persist/reuse per-file summaries here; empty disables. */
    std::string cacheDir;
    /** Subset of ruleNames() to run; empty runs all. */
    std::vector<std::string> rules;
};

struct AnalyzeReport
{
    /** Sorted findings; rule == "io" marks unreadable inputs. */
    std::vector<Diagnostic> diagnostics;
    std::size_t filesIndexed = 0;
    std::size_t cacheHits = 0;
};

AnalyzeReport analyzeTree(const AnalyzeOptions &options);

} // namespace cmt::analyze

#endif // CMT_TOOLS_ANALYZE_ANALYSIS_H
