#include "analyze/analysis.h"

#include "analyze/index.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace cmt::analyze
{

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" ||
           ext == ".hpp";
}

/** Same skip set as cmt_lint: generated trees, committed fixtures,
 *  vendored code, build dirs. Explicit paths always index. */
bool
skipDirectory(const std::string &name)
{
    if (name.empty() || name[0] == '.')
        return true;
    if (name.rfind("build", 0) == 0)
        return true;
    return name == "fixtures" || name == "results" ||
           name == "third_party" || name == "corpus";
}

void
collectFiles(const std::string &path, std::vector<std::string> &out,
             std::vector<Diagnostic> &diags)
{
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<std::string> entries;
        for (const fs::directory_entry &entry :
             fs::directory_iterator(path, ec)) {
            const std::string name =
                entry.path().filename().string();
            if (entry.is_directory()) {
                if (!skipDirectory(name))
                    entries.push_back(entry.path().string());
            } else if (isSourceFile(entry.path())) {
                entries.push_back(entry.path().string());
            }
        }
        std::sort(entries.begin(), entries.end());
        for (const std::string &entry : entries) {
            if (fs::is_directory(entry, ec))
                collectFiles(entry, out, diags);
            else
                out.push_back(entry);
        }
        return;
    }
    if (fs::is_regular_file(path, ec)) {
        out.push_back(path);
        return;
    }
    Diagnostic d;
    d.file = path;
    d.rule = "io";
    d.message = "not a file or directory";
    diags.push_back(std::move(d));
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Repo-relative, '/'-separated path for stable diagnostics and
 *  rule scoping (src/tree/... matching). */
std::string
relativize(const std::string &path, const std::string &root)
{
    std::string p = path;
    std::string prefix = root;
    while (!prefix.empty() && prefix.back() == '/')
        prefix.pop_back();
    if (!prefix.empty() && prefix != "." &&
        p.rfind(prefix + "/", 0) == 0)
        p = p.substr(prefix.size() + 1);
    while (p.rfind("./", 0) == 0)
        p = p.substr(2);
    return p;
}

std::string
cacheEntryPath(const std::string &cacheDir,
               const std::string &relPath)
{
    std::string name = relPath;
    std::replace(name.begin(), name.end(), '/', '_');
    return cacheDir + "/" + name + ".json";
}

/** A usable cached summary must parse, match the schema, and match
 *  the current content hash; anything else is a miss. */
bool
loadCached(const std::string &cacheDir, const std::string &relPath,
           std::uint64_t hash, FileSummary *out)
{
    std::string text;
    if (!readFile(cacheEntryPath(cacheDir, relPath), &text))
        return false;
    FileSummary summary;
    if (!summaryFromJson(text, &summary))
        return false;
    if (summary.path != relPath || summary.contentHash != hash)
        return false;
    *out = std::move(summary);
    return true;
}

void
storeCached(const std::string &cacheDir,
            const FileSummary &summary)
{
    std::error_code ec;
    fs::create_directories(cacheDir, ec);
    const std::string path =
        cacheEntryPath(cacheDir, summary.path);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return;
        out << summaryToJson(summary) << '\n';
    }
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

} // namespace

AnalyzeReport
analyzeTree(const AnalyzeOptions &options)
{
    AnalyzeReport report;

    std::vector<std::string> roots = options.paths;
    if (roots.empty()) {
        for (const char *dir : {"src", "tools", "bench"}) {
            const std::string p = options.root + "/" + dir;
            std::error_code ec;
            if (fs::is_directory(p, ec))
                roots.push_back(p);
        }
    }

    std::vector<std::string> paths;
    for (const std::string &root : roots)
        collectFiles(root, paths, report.diagnostics);

    std::vector<FileSummary> files;
    for (const std::string &path : paths) {
        std::string contents;
        if (!readFile(path, &contents)) {
            Diagnostic d;
            d.file = path;
            d.rule = "io";
            d.message = "cannot read file";
            report.diagnostics.push_back(std::move(d));
            continue;
        }
        const std::string rel = relativize(path, options.root);
        const std::uint64_t hash = contentHash(contents);
        FileSummary summary;
        if (!options.cacheDir.empty() &&
            loadCached(options.cacheDir, rel, hash, &summary)) {
            ++report.cacheHits;
        } else {
            summary = summarizeSource(rel, contents);
            if (!options.cacheDir.empty())
                storeCached(options.cacheDir, summary);
        }
        files.push_back(std::move(summary));
        ++report.filesIndexed;
    }

    std::vector<Diagnostic> findings =
        runPasses(files, options.rules);
    report.diagnostics.insert(
        report.diagnostics.end(),
        std::make_move_iterator(findings.begin()),
        std::make_move_iterator(findings.end()));
    return report;
}

} // namespace cmt::analyze
