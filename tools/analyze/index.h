/**
 * @file
 * Cross-translation-unit symbol index for cmt_analyze.
 *
 * Each source file parses — independently, so results cache — into a
 * FileSummary: its includes, the symbols it declares, the identifiers
 * it uses, and one FunctionInfo per function *definition*. A function
 * carries a flattened event tree (reads of untrusted memory, verify
 * calls, ordinary calls, lock acquisitions, returns/throws, and
 * branch/loop brackets) that the rule passes interpret without ever
 * touching tokens again. The whole-program passes then stitch
 * summaries together: call edges resolve by name across files, lock
 * sets propagate over those edges, and the include graph closes
 * transitively.
 *
 * The parser is a recognizer, not a compiler: it runs on the shared
 * token stream (analyze/tokenizer.h), tracks namespace/class/function
 * scope by brace matching, and degrades conservatively on constructs
 * it does not model (emitting fewer events, never crashing). That is
 * the right trade for CI linting of our own codebase — the fixtures
 * under tests/tools/fixtures/analyze/ pin exactly what it recognizes.
 *
 * FileSummary serializes to JSON (schema-versioned, keyed on a
 * content hash) so `cmt_analyze --cache-dir` skips re-parsing
 * unchanged files (summaryToJson / summaryFromJson).
 */

#ifndef CMT_TOOLS_ANALYZE_INDEX_H
#define CMT_TOOLS_ANALYZE_INDEX_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cmt::analyze
{

/** One step in a function's flattened control/data event tree. */
struct Event
{
    enum class Kind
    {
        kRead,       ///< direct read of untrusted bytes (ChunkStore)
        kVerify,     ///< call literally named `verify`
        kCall,       ///< any other call; name/qualifier identify it
        kReturn,     ///< return statement (data may leave here)
        kThrow,      ///< throw statement (path terminates)
        kIfBegin,    ///< then-branch opens (condition events precede)
        kElseBegin,  ///< else-branch opens
        kIfEnd,      ///< branches merge
        kMaybeBegin, ///< 0-or-more region: loop / switch / lambda /
                     ///< catch body
        kMaybeEnd,   ///< 0-or-more region closes
        kLock,       ///< MutexLock acquisition (name = lock id expr)
        kUnlock,     ///< RAII release at enclosing block close
    };

    Kind kind = Kind::kCall;
    std::string name;      ///< callee or lock expression
    std::string qualifier; ///< receiver before . / -> / :: (one hop)
    int line = 0;
    bool discarded = false; ///< expression-statement call whose
                            ///< result nothing consumes
};

/** One function *definition* with its interpreted body. */
struct FunctionInfo
{
    std::string name;      ///< unqualified (trailing id of the chain)
    std::string className; ///< enclosing class or `A::` qualifier
    int nameLine = 0;      ///< line of the declarator name
    int bodyOpenLine = 0;  ///< line of the `{`
    int endLine = 0;       ///< line of the matching `}`
    bool returnsVoid = true;
    /** Declared return type, specifiers stripped, tokens joined with
     *  spaces ("bool", "std :: uint64_t"); empty for ctors/dtors. */
    std::string returnType;
    /** Takes a mutable std::span<std::uint8_t> — data can leave
     *  through an out-parameter even when returnsVoid. */
    bool hasMutableSpanParam = false;
    std::vector<Event> events;
};

/** What one header/source file declares and consumes. */
struct FileSummary
{
    std::string path; ///< repo-relative, '/'-separated
    std::uint64_t contentHash = 0;

    /** Include targets in order: quoted keep their spelling, angled
     *  keep theirs; resolution to indexed files happens later. */
    std::vector<std::string> quotedIncludes;
    std::vector<std::string> angledIncludes;
    std::vector<int> quotedIncludeLines; ///< parallel to quoted

    /** Type names (class/struct/union/enum) *defined* here. */
    std::set<std::string> definedTypes;
    /** Everything declared at namespace/class scope: types, function
     *  names, enumerators, aliases, macros, namespace constants. */
    std::set<std::string> declaredSymbols;
    /** Every identifier spelled in the file -> first line of use. */
    std::map<std::string, int> usedIdentifiers;

    std::vector<FunctionInfo> functions;

    /** rule -> lines carrying `// cmt-analyze: allow(rule)`. A
     *  directive on its own line also covers the next line, same as
     *  cmt_lint. */
    std::map<std::string, std::set<int>> allowLines;
};

/** Parse one file's contents into a summary. Never throws on weird
 *  input; unmodeled constructs just yield fewer events. */
FileSummary summarizeSource(const std::string &path,
                            const std::string &contents);

/** FNV-1a over the raw bytes; keys the index cache. */
std::uint64_t contentHash(const std::string &contents);

/** True when @p rule is allowed at @p line in @p file (directive on
 *  the same line, or on a directive-only line immediately above). */
bool allowedAt(const FileSummary &file, const std::string &rule,
               int line);

/** JSON round-trip for the --cache-dir index cache. Schema changes
 *  must bump kIndexSchemaVersion so stale entries miss cleanly. */
inline constexpr int kIndexSchemaVersion = 1;
std::string summaryToJson(const FileSummary &summary);
/** @return false (summary untouched) on malformed/mismatched JSON. */
bool summaryFromJson(const std::string &text, FileSummary *out);

} // namespace cmt::analyze

#endif // CMT_TOOLS_ANALYZE_INDEX_H
