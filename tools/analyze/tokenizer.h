/**
 * @file
 * Shared C++ token stream for the repo's static-analysis tools.
 *
 * cmt_lint started with a char-level scrubber; cmt_analyze needs real
 * tokens (identifiers, literals, punctuation, preprocessor structure)
 * to build a symbol index and run whole-program rules. Both tools now
 * lex through this one tokenizer so literal handling can never
 * diverge again — the motivating bug was the old scanner mis-lexing
 * C++14 digit separators (1'000'000) as char-literal starts, which
 * silenced every rule on the rest of the line.
 *
 * The lexer is standard-shaped where it matters for analysis:
 *  - // and block comments (kept as tokens; callers filter),
 *  - string/char literals with escapes, encoding prefixes (u8, u, U,
 *    L) and raw strings R"delim(...)delim",
 *  - pp-numbers, so digit separators belong to the number token and a
 *    separator can never open a char literal,
 *  - preprocessor lines (tokens flagged inDirective, with
 *    line-continuation handling), so #include targets lex as one
 *    header-name token,
 *  - multi-char punctuation (::, ->, ..., shifts, compound assigns).
 *
 * No heap-allocated AST, no libclang: tokens carry byte offsets into
 * the source so higher layers can slice, scrub, or re-emit.
 */

#ifndef CMT_TOOLS_ANALYZE_TOKENIZER_H
#define CMT_TOOLS_ANALYZE_TOKENIZER_H

#include <cstddef>
#include <string>
#include <vector>

namespace cmt::analyze
{

enum class TokKind
{
    kIdentifier,  ///< identifiers and keywords (callers classify)
    kNumber,      ///< pp-number: 42, 1'000'000, 0x1p-2, 1.5e+3
    kString,      ///< "...", u8"...", R"(...)", including the prefix
    kCharLiteral, ///< 'x', L'\n', u8'a', including the prefix
    kHeaderName,  ///< <path> or "path" in an #include line
    kPunct,       ///< operators and punctuation
    kComment,     ///< // or /* */, full text including delimiters
};

/** One lexed token. Offsets index the original source string. */
struct Token
{
    TokKind kind = TokKind::kPunct;
    std::string text;       ///< exact source spelling
    int line = 0;           ///< 1-based line of the first character
    std::size_t begin = 0;  ///< byte offset of the first character
    std::size_t end = 0;    ///< one past the last byte
    bool inDirective = false; ///< inside a preprocessor logical line
};

/**
 * Lex @p source completely. Never fails: unterminated literals and
 * stray bytes lex as best-effort tokens so analysis degrades instead
 * of aborting (analysis inputs are arbitrary working-tree files).
 */
std::vector<Token> tokenize(const std::string &source);

/**
 * Replace comment and string/char-literal contents with spaces,
 * preserving line structure and (for non-raw strings) the quote
 * characters. With @p keepComments, comment text survives — that
 * variant feeds suppression-directive scans, where a directive only
 * counts inside a comment, never inside a string literal.
 *
 * This is the tokenizer-backed replacement for cmt_lint's original
 * char-level scrubber; digit separators and prefixed char literals
 * lex correctly here.
 */
std::string scrubSource(const std::string &source,
                        bool keepComments = false);

/** True for C++ keywords (flow/decl words the passes must not treat
 *  as function names: if, while, return, sizeof, ...). */
bool isKeyword(const std::string &word);

} // namespace cmt::analyze

#endif // CMT_TOOLS_ANALYZE_TOKENIZER_H
