/**
 * @file
 * Repo-specific lint rules behind the cmt_lint binary.
 *
 * These encode CMT invariants that generic tooling cannot know:
 *
 *  - nondeterminism : no rand()/srand()/std::random_device/time()/
 *                     clock()/system_clock/getpid() inside src/.
 *                     Simulation results must be a pure function of
 *                     the config (the memo cache and byte-identity
 *                     guarantees depend on it); all randomness goes
 *                     through the seeded cmt::Rng.
 *  - stdout-discipline : no std::cout / bare printf()/puts() in src/
 *                     outside src/support/. Library code reports
 *                     through logging.h (line-atomic) or returns data;
 *                     only harness/tool mains own stdout.
 *  - naked-new      : no naked new/delete expressions in src/; the
 *                     simulator is RAII-only (containers,
 *                     unique_ptr). Placement new is still flagged -
 *                     allowlist it if a pool ever needs one.
 *  - header-guard   : every header carries #pragma once or an
 *                     #ifndef/#define include guard.
 *  - catch-all      : no catch (...) in src/, bench/, or tools/. A
 *                     catch-all swallows the SimError that
 *                     ScopedThrowOnError turns panics into, hiding
 *                     integrity violations instead of isolating them.
 *  - root-registers : no raw root-register storage (a roots_ member)
 *                     or direct TreeContext::roots[] indexing in src/
 *                     outside src/tree/shard_router.h. The ShardRouter
 *                     owns the per-shard root registers; everyone else
 *                     goes through rootOf() / context(), which carry
 *                     the shard routing and root-level assertions.
 *  - hot-path-alloc : no std::make_shared / std::function in
 *                     src/tree/. The policy access paths run once per
 *                     L2 miss; type-erased callbacks spill captures to
 *                     the heap and make_shared allocates outright.
 *                     Callbacks ride SmallCallback's bounded inline
 *                     storage, job state recycles through pooled
 *                     slabs. Cold-path wiring (construction-time
 *                     hooks) escapes with an allow directive.
 *  - seed-nondeterminism : no time()/getpid()/std::random_device in
 *                     tests/, bench/, or tools/ (src/ is covered by
 *                     the stricter nondeterminism rule). Wall-clock
 *                     or pid-derived RNG seeds produce fuzz traces
 *                     and corpus entries nobody can replay; cmt_fuzz
 *                     promises `--seed S` bit-reproducibility, so
 *                     seeds come from the command line or a fixed
 *                     literal.
 *
 * Suppression: append `// cmt-lint: allow(<rule>)` to the offending
 * line, or put it alone on the line directly above.
 *
 * The scanner is textual (comments and string/char literals are
 * stripped first), deliberately dependency-free: no libclang in the
 * build, so the lint job costs one small C++ binary.
 */

#ifndef CMT_TOOLS_LINT_RULES_H
#define CMT_TOOLS_LINT_RULES_H

#include <string>
#include <vector>

namespace cmt::lint
{

/** One finding: where, which rule, and what to do about it. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** All rule identifiers accepted by allow() directives. */
const std::vector<std::string> &ruleNames();

/**
 * Replace comments and string/char literal contents with spaces,
 * preserving line structure, so rules never fire on prose. Handles
 * //, block comments, and R"delim(...)delim" raw strings.
 * Exposed for tests.
 */
std::string stripCommentsAndStrings(const std::string &source);

/**
 * Lint one translation unit. @p path is the repo-relative path (it
 * decides which rules apply: src/ vs src/support/ vs bench/ ...);
 * @p source is the file contents.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &source);

/**
 * Lint a file from disk. @return false (and appends a Diagnostic
 * with rule "io") when the file cannot be read.
 */
bool lintFile(const std::string &path, std::vector<Diagnostic> *out);

/**
 * Walk @p roots (files are linted directly; directories are walked
 * recursively) collecting diagnostics for every .h/.hpp/.cc/.cpp.
 * Directory walks skip fixtures, results, "build..." and dot
 * directories; explicitly named files are always linted.
 */
std::vector<Diagnostic>
lintPaths(const std::vector<std::string> &roots);

} // namespace cmt::lint

#endif // CMT_TOOLS_LINT_RULES_H
