#include "lint_rules.h"

#include "analyze/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace cmt::lint
{

namespace
{

/** Forward-slash path for substring classification. */
std::string
normalize(const std::string &path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

/** True when @p path lives under directory prefix @p dir ("src/"). */
bool
inDir(const std::string &path, const std::string &dir)
{
    if (path.rfind(dir, 0) == 0)
        return true;
    return path.find("/" + dir) != std::string::npos;
}

bool
isHeaderPath(const std::string &path)
{
    return path.size() >= 2 &&
           (path.rfind(".h") == path.size() - 2 ||
            path.rfind(".hpp") == path.size() - 4);
}

/**
 * Blank out string/char literal contents and (unless @p keepComments)
 * comments, preserving line structure, so rule patterns only ever see
 * code. The keepComments variant feeds the allow()-directive scan:
 * directives live in comments, but a directive spelled inside a
 * string literal is data, not a suppression.
 *
 * Delegates to the shared analyzer tokenizer — one lexer for
 * cmt_lint and cmt_analyze, so literal handling (digit separators,
 * prefixed char literals like L'x', raw strings) can never diverge
 * between the tools.
 */
std::string
scrub(const std::string &src, bool keepComments = false)
{
    return analyze::scrubSource(src, keepComments);
}

/** One textual pattern belonging to a rule. */
struct Pattern
{
    const char *rule;
    std::regex re;
    const char *message;
};

/** Patterns applied per scrubbed line, guarded by path scope. */
const std::vector<Pattern> &
nondeterminismPatterns()
{
    static const std::vector<Pattern> patterns = {
        {"nondeterminism",
         std::regex(R"((^|[^A-Za-z0-9_])s?rand\s*\()"),
         "rand()/srand() breaks run reproducibility; draw from a "
         "seeded cmt::Rng instead"},
        {"nondeterminism", std::regex(R"(random_device)"),
         "std::random_device is nondeterministic; seed a cmt::Rng "
         "from the config instead"},
        {"nondeterminism",
         std::regex(R"((^|[^A-Za-z0-9_])time\s*\()"),
         "wall-clock time() in simulation code breaks memoization; "
         "derive timing from simulated cycles"},
        {"nondeterminism",
         std::regex(R"((^|[^A-Za-z0-9_])clock\s*\()"),
         "clock() in simulation code breaks memoization; derive "
         "timing from simulated cycles"},
        {"nondeterminism", std::regex(R"(system_clock)"),
         "system_clock is wall-clock; use steady_clock for host "
         "timing or simulated cycles for model timing"},
        {"nondeterminism", std::regex(R"(gettimeofday)"),
         "gettimeofday() is wall-clock nondeterminism; use simulated "
         "cycles"},
        {"nondeterminism",
         std::regex(R"((^|[^A-Za-z0-9_])getpid\s*\()"),
         "getpid() varies per run; simulation results must be a pure "
         "function of the config"},
    };
    return patterns;
}

/**
 * Seed hygiene for test/bench/tool code. Outside src/ wall-clock use
 * is generally fine (harness timing, log stamps), but deriving an RNG
 * seed from time()/getpid()/std::random_device produces fuzz cases
 * and corpus entries that nobody can replay. cmt_fuzz's contract is
 * `--seed S` bit-reproducibility, so seeds must come from the command
 * line, a fixed literal, or another seeded cmt::Rng.
 */
const std::vector<Pattern> &
seedPatterns()
{
    static const std::vector<Pattern> patterns = {
        {"seed-nondeterminism",
         std::regex(R"((^|[^A-Za-z0-9_])time\s*\()"),
         "time()-derived seeds make fuzz runs unreplayable; take the "
         "seed from the command line or a fixed literal"},
        {"seed-nondeterminism",
         std::regex(R"((^|[^A-Za-z0-9_])getpid\s*\()"),
         "getpid()-derived seeds make fuzz runs unreplayable; take "
         "the seed from the command line or a fixed literal"},
        {"seed-nondeterminism", std::regex(R"(random_device)"),
         "std::random_device seeds make fuzz runs unreplayable; seed "
         "a cmt::Rng explicitly instead"},
    };
    return patterns;
}

const std::vector<Pattern> &
stdoutPatterns()
{
    static const std::vector<Pattern> patterns = {
        {"stdout-discipline",
         std::regex(R"((^|[^A-Za-z0-9_])cout($|[^A-Za-z0-9_]))"),
         "library code must not own stdout; report via logging.h or "
         "return data (stdout belongs to bench/tool mains)"},
        {"stdout-discipline",
         std::regex(R"((^|[^A-Za-z0-9_])printf\s*\()"),
         "bare printf() bypasses line-atomic logging; use "
         "logging.h (or snprintf into a buffer)"},
        {"stdout-discipline",
         std::regex(R"((^|[^A-Za-z0-9_])puts\s*\()"),
         "puts() bypasses line-atomic logging; use logging.h"},
        {"stdout-discipline",
         std::regex(R"(#\s*include\s*<\s*(cstdio|stdio\.h)\s*>)"),
         "<cstdio> outside src/support/ invites raw FILE* output; "
         "report through logging.h (debugf/warn/inform) or justify "
         "the FILE* owner with an allow directive"},
    };
    return patterns;
}

const std::vector<Pattern> &
rootRegisterPatterns()
{
    static const std::vector<Pattern> patterns = {
        {"root-registers",
         std::regex(R"((^|[^A-Za-z0-9_])roots_($|[^A-Za-z0-9_]))"),
         "raw root-register storage outside ShardRouter; the "
         "per-shard TreeContexts own the registers - go through "
         "rootOf()/context()"},
        {"root-registers", std::regex(R"((\.|->)roots\s*\[)"),
         "indexing TreeContext::roots directly bypasses rootOf()'s "
         "shard routing and root-level assertion; use "
         "rootOf(chunk)"},
    };
    return patterns;
}

/**
 * Allocation hygiene for the integrity-tree hot path. Every L2 miss
 * walks a policy's access path, so a per-call heap allocation there
 * is a per-miss allocation: std::function's type erasure spills
 * captures past its small-buffer onto the heap, and make_shared is a
 * heap allocation by definition. Policy code carries callbacks in
 * SmallCallback (compile-time-bounded inline storage) and recycles
 * job state through pooled slabs; cold-path uses (wiring hooks at
 * construction, test scaffolding) justify themselves with an allow
 * directive.
 */
const std::vector<Pattern> &
hotPathAllocPatterns()
{
    static const std::vector<Pattern> patterns = {
        {"hot-path-alloc",
         std::regex(R"((^|[^A-Za-z0-9_])make_shared($|[^A-Za-z0-9_]))"),
         "make_shared in tree policy code allocates per call on the "
         "per-miss path; use pooled job slabs (support/arena.h) or "
         "justify the cold path with an allow directive"},
        {"hot-path-alloc",
         std::regex(R"((^|[^A-Za-z0-9_])std\s*::\s*function($|[^A-Za-z0-9_]))"),
         "std::function in tree policy code heap-allocates spilled "
         "captures per call; carry callbacks in SmallCallback "
         "(support/callback.h) or justify the cold path with an "
         "allow directive"},
    };
    return patterns;
}

const std::vector<Pattern> &
catchAllPatterns()
{
    static const std::vector<Pattern> patterns = {
        {"catch-all", std::regex(R"(catch\s*\(\s*\.\.\.\s*\))"),
         "catch (...) swallows SimError from ScopedThrowOnError, "
         "hiding panics; catch std::exception or narrower"},
    };
    return patterns;
}

/** Word occurrences of new/delete that form expressions. */
void
checkNakedNewDelete(const std::string &path,
                    const std::vector<std::string> &lines,
                    const std::function<bool(int, const char *)> &allowed,
                    std::vector<Diagnostic> *out)
{
    static const std::regex word(
        R"((^|[^A-Za-z0-9_])(new|delete)($|[^A-Za-z0-9_]))");
    for (std::size_t n = 0; n < lines.size(); ++n) {
        const std::string &line = lines[n];
        // Preprocessor directives never contain allocation
        // expressions; `#include <new>` is the obvious false match.
        const auto first = line.find_first_not_of(" \t");
        if (first != std::string::npos && line[first] == '#')
            continue;
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            word);
             it != std::sregex_iterator(); ++it) {
            const std::smatch &m = *it;
            const std::string kw = m[2].str();
            // "= delete" is the deleted-member declaration, not a
            // delete expression (no valid expression puts '=' before
            // the delete keyword): skip it, including the wrapped
            // "... =\n    delete;" spelling. "= new ..." stays
            // flagged - that's exactly the naked allocation we ban.
            if (kw == "delete") {
                std::size_t p =
                    static_cast<std::size_t>(m.position(2));
                while (p > 0 &&
                       std::isspace(static_cast<unsigned char>(
                           line[p - 1])))
                    --p;
                char prev = p > 0 ? line[p - 1] : '\0';
                if (prev == '\0' && n > 0) {
                    const std::string &above = lines[n - 1];
                    const auto last =
                        above.find_last_not_of(" \t");
                    if (last != std::string::npos)
                        prev = above[last];
                }
                if (prev == '=')
                    continue;
            }
            if (allowed(static_cast<int>(n + 1), "naked-new"))
                continue;
            out->push_back(
                {path, static_cast<int>(n + 1), "naked-new",
                 "naked '" + kw +
                     "' in simulator code; own memory via "
                     "containers or std::unique_ptr"});
        }
    }
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "nondeterminism", "stdout-discipline", "naked-new",
        "header-guard", "catch-all", "root-registers",
        "seed-nondeterminism", "hot-path-alloc",
    };
    return names;
}

std::string
stripCommentsAndStrings(const std::string &source)
{
    return scrub(source);
}

std::vector<Diagnostic>
lintSource(const std::string &rawPath, const std::string &source)
{
    const std::string path = normalize(rawPath);
    const bool inSrc = inDir(path, "src/");
    const bool inSupport = inDir(path, "src/support/");
    const bool inBenchOrTools =
        inDir(path, "bench/") || inDir(path, "tools/");
    const bool inTests = inDir(path, "tests/");
    // The ShardRouter is the one module allowed to touch root
    // registers directly; everyone else uses its accessors.
    const bool isShardRouter =
        path.find("tree/shard_router.") != std::string::npos;

    std::vector<Diagnostic> diags;

    // Collect `// cmt-lint: allow(rule, ...)` directives. Scanned
    // with comments kept but strings stripped: a directive only
    // counts inside a comment, never inside a string literal. A
    // directive suppresses its own line; a directive-only line also
    // covers the next line.
    const std::vector<std::string> rawLines =
        splitLines(scrub(source, /*keepComments=*/true));
    std::map<int, std::set<std::string>> allowMap;
    {
        static const std::regex directive(
            R"(cmt-lint:\s*allow\(\s*([A-Za-z0-9_,\- ]+)\s*\))");
        static const std::regex onlyComment(R"(^\s*(//|/\*).*$)");
        for (std::size_t n = 0; n < rawLines.size(); ++n) {
            std::smatch m;
            if (!std::regex_search(rawLines[n], m, directive))
                continue;
            std::stringstream list(m[1].str());
            std::string rule;
            while (std::getline(list, rule, ',')) {
                rule.erase(0, rule.find_first_not_of(" \t"));
                rule.erase(rule.find_last_not_of(" \t") + 1);
                if (std::find(ruleNames().begin(), ruleNames().end(),
                              rule) == ruleNames().end()) {
                    diags.push_back(
                        {path, static_cast<int>(n + 1),
                         "bad-directive",
                         "unknown rule '" + rule +
                             "' in cmt-lint allow()"});
                    continue;
                }
                allowMap[static_cast<int>(n + 1)].insert(rule);
                if (std::regex_match(rawLines[n], onlyComment))
                    allowMap[static_cast<int>(n + 2)].insert(rule);
            }
        }
    }
    const auto allowed = [&](int line, const char *rule) {
        const auto it = allowMap.find(line);
        return it != allowMap.end() && it->second.count(rule) > 0;
    };

    const std::string clean = scrub(source);
    const std::vector<std::string> lines = splitLines(clean);

    // header-guard: any header, whole-file property. Checked on the
    // scrubbed text - a comment that merely mentions "#pragma once"
    // is not a guard.
    if (isHeaderPath(path)) {
        static const std::regex ifndefRe(
            R"(#\s*ifndef\s+([A-Za-z0-9_]+))");
        bool hasGuard =
            clean.find("#pragma once") != std::string::npos;
        std::smatch m;
        if (!hasGuard && std::regex_search(clean, m, ifndefRe)) {
            hasGuard = clean.find("#define " + m[1].str(),
                                  static_cast<std::size_t>(
                                      m.position(0))) !=
                       std::string::npos;
        }
        if (!hasGuard && !allowed(1, "header-guard")) {
            diags.push_back(
                {path, 1, "header-guard",
                 "header lacks #pragma once or an #ifndef/#define "
                 "include guard"});
        }
    }

    const auto apply = [&](const std::vector<Pattern> &patterns) {
        for (std::size_t n = 0; n < lines.size(); ++n) {
            for (const Pattern &p : patterns) {
                if (!std::regex_search(lines[n], p.re))
                    continue;
                if (allowed(static_cast<int>(n + 1), p.rule))
                    continue;
                diags.push_back({path, static_cast<int>(n + 1),
                                 p.rule, p.message});
            }
        }
    };

    if (inSrc)
        apply(nondeterminismPatterns());
    // src/ already bans every wall-clock source outright; the seed
    // rule covers the harness code the stricter rule exempts.
    if (!inSrc && (inTests || inBenchOrTools))
        apply(seedPatterns());
    if (inSrc && !inSupport)
        apply(stdoutPatterns());
    if (inSrc)
        checkNakedNewDelete(path, lines, allowed, &diags);
    if (inSrc || inBenchOrTools)
        apply(catchAllPatterns());
    if (inSrc && !isShardRouter)
        apply(rootRegisterPatterns());
    if (inDir(path, "src/tree/"))
        apply(hotPathAllocPatterns());

    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return diags;
}

bool
lintFile(const std::string &path, std::vector<Diagnostic> *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        out->push_back({normalize(path), 0, "io", "cannot read file"});
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::vector<Diagnostic> diags =
        lintSource(path, buf.str());
    out->insert(out->end(), diags.begin(), diags.end());
    return true;
}

namespace
{

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

/** Directories a default walk never descends into. */
bool
skippedDir(const std::string &name)
{
    return name == "fixtures" || name == "results" ||
           name == "third_party" || name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

} // namespace

std::vector<Diagnostic>
lintPaths(const std::vector<std::string> &roots)
{
    std::vector<std::string> files;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            fs::recursive_directory_iterator it(root, ec), end;
            while (it != end) {
                if (it->is_directory(ec) &&
                    skippedDir(it->path().filename().string())) {
                    it.disable_recursion_pending();
                } else if (it->is_regular_file(ec) &&
                           lintableExtension(it->path())) {
                    files.push_back(it->path().generic_string());
                }
                it.increment(ec);
                if (ec)
                    break;
            }
        } else {
            // Explicit file argument: linted unconditionally, even
            // under a directory the default walk would skip.
            files.push_back(root);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Diagnostic> diags;
    for (const std::string &file : files)
        lintFile(file, &diags);
    return diags;
}

} // namespace cmt::lint
