/**
 * @file
 * cmt_benchdiff: compare two benchmark snapshots' wall-clock.
 *
 *   cmt_benchdiff [options] OLD.json NEW.json
 *
 *     --threshold R    exit 1 if any paired row's new/old slowdown
 *                      exceeds R (CI perf gate; use a generous band)
 *     --min-speedup S  exit 1 unless the geomean old/new speedup over
 *                      all paired rows reaches S (optimisation proof)
 *     --figure NAME    restrict the comparison to rows of one figure
 *                      (exact match), e.g. micro_sim
 *     --label PREFIX   restrict to rows whose label starts with
 *                      PREFIX, e.g. sim_instructions
 *
 * Both inputs are BENCH_*.json documents from
 * scripts/bench_snapshot.sh. Rows pair by (figure, label); a paired
 * row whose config block differs is INCOMPARABLE - its timings
 * measure different experiments - and fails any active gate, as do
 * rows missing from the new snapshot. Rows only in the new snapshot
 * are reported but allowed (new workloads gain baseline timings when
 * the committed snapshot is regenerated).
 *
 * Exit status: 0 pass, 1 gate failure or incomparable, 2 usage/I-O.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/benchdiff.h"
#include "support/json.h"

using namespace cmt;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr << "usage: cmt_benchdiff [--threshold R] "
                 "[--min-speedup S] [--figure NAME] "
                 "[--label PREFIX] OLD.json NEW.json\n";
    std::exit(2);
}

Json
readJsonFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "cmt_benchdiff: cannot open " << path << "\n";
        std::exit(2);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    Json doc;
    std::string error;
    if (!Json::parse(buf.str(), &doc, &error)) {
        std::cerr << "cmt_benchdiff: " << path << ": " << error
                  << "\n";
        std::exit(2);
    }
    return doc;
}

double
parseRatio(const std::string &text)
{
    try {
        return std::stod(text);
    } catch (const std::exception &) {
        usage();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDiffOptions options;
    BenchDiffFilter filter;
    std::vector<std::string> positional;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--threshold") {
            options.maxSlowdown = parseRatio(value());
        } else if (arg == "--min-speedup") {
            options.minSpeedup = parseRatio(value());
        } else if (arg == "--figure") {
            filter.figure = value();
        } else if (arg == "--label") {
            filter.labelPrefix = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2)
        usage();

    const Json oldDoc = readJsonFile(positional[0]);
    const Json newDoc = readJsonFile(positional[1]);

    const BenchDiffReport report =
        diffBenchSnapshots(oldDoc, newDoc, filter);
    printBenchDiff(std::cout, report);

    std::string why;
    if (!benchDiffPasses(report, options, &why)) {
        std::cout << "benchdiff: FAIL - " << why << "\n";
        return 1;
    }
    std::cout << "benchdiff: PASS\n";
    return 0;
}
