/**
 * @file
 * cmt_sim: command-line front end to the secure-processor simulator.
 *
 *   cmt_sim [options]
 *     --bench <name>      one of the nine specgen benchmarks (gcc...)
 *     --trace <file>      drive the core from a CMT trace file instead
 *     --scheme <s>        base | naive | cached | incremental
 *     --l2-size <bytes>   L2 capacity            (default 1048576)
 *     --l2-block <bytes>  L2 line size           (default 64)
 *     --chunk <bytes>     tree chunk size        (default = block)
 *     --shards <k>        independent subtrees   (default 1)
 *     --buffers <n>       hash read/write buffer entries (default 16)
 *     --hash-gbps <f>     hash throughput        (default 3.2)
 *     --no-spec           block until checks complete (ablation)
 *     --encrypt           enable the privacy extension
 *     --warmup <n>        warmup instructions    (default 250000)
 *     --instr <n>         measured instructions  (default 600000)
 *     --seed <n>          workload seed          (default 1)
 *     --stats             dump every counter after the run
 *     --json <path>       write config/result/stats as JSON
 *
 * The run goes through the shared SweepRunner (a sweep of one), so a
 * panicking configuration reports an error and exits non-zero
 * instead of aborting mid-simulation.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "sim/config.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "support/json.h"
#include "trace/trace_file.h"
#include "tree/scheme.h"

using namespace cmt;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr << "usage: cmt_sim [--bench NAME | --trace FILE] "
                 "[--scheme base|naive|cached|incremental]\n"
                 "  [--l2-size N] [--l2-block N] [--chunk N] "
                 "[--shards K] [--buffers N] [--hash-gbps F]\n"
                 "  [--no-spec] [--encrypt] [--warmup N] [--instr N] "
                 "[--seed N] [--stats] [--json PATH]\n";
    std::exit(2);
}

Scheme
parseScheme(const std::string &s)
{
    if (s == "base")
        return Scheme::kBase;
    if (s == "naive")
        return Scheme::kNaive;
    if (s == "cached" || s == "c" || s == "m")
        return Scheme::kCached;
    if (s == "incremental" || s == "i")
        return Scheme::kIncremental;
    cmt_fatal("unknown scheme '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    std::string trace_path;
    std::string json_path;
    bool dump_stats = false;
    bool chunk_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--bench") {
            cfg.benchmark = value();
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--scheme") {
            cfg.l2.scheme = parseScheme(value());
        } else if (arg == "--l2-size") {
            cfg.l2.sizeBytes = std::stoull(value());
        } else if (arg == "--l2-block") {
            cfg.l2.blockSize = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--chunk") {
            cfg.l2.chunkSize = std::stoull(value());
            chunk_set = true;
        } else if (arg == "--shards") {
            cfg.l2.shards = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--buffers") {
            cfg.l2.readBufferEntries =
                static_cast<unsigned>(std::stoul(value()));
            cfg.l2.writeBufferEntries = cfg.l2.readBufferEntries;
        } else if (arg == "--hash-gbps") {
            cfg.hash.throughputBytesPerCycle = std::stod(value());
        } else if (arg == "--no-spec") {
            cfg.l2.speculativeChecks = false;
        } else if (arg == "--encrypt") {
            cfg.l2.encryptData = true;
        } else if (arg == "--warmup") {
            cfg.warmupInstructions = std::stoull(value());
        } else if (arg == "--instr") {
            cfg.measureInstructions = std::stoull(value());
        } else if (arg == "--seed") {
            cfg.seed = std::stoull(value());
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--json") {
            json_path = value();
        } else {
            usage();
        }
    }
    if (!chunk_set)
        cfg.l2.chunkSize = cfg.l2.blockSize;

    printConfigTable(std::cout, cfg);

    // Side channel out of the single-job sweep: the runner only
    // returns SimResult, but --stats/--json want the full registry.
    std::string stats_text;
    Json stats_json;

    SweepRunner::Options ropt;
    ropt.jobs = 1;
    ropt.simulateFn = [&](const SystemConfig &c) {
        std::unique_ptr<System> system;
        if (trace_path.empty()) {
            system = std::make_unique<System>(c);
        } else {
            system = std::make_unique<System>(
                c, std::make_unique<FileTrace>(trace_path));
        }
        const SimResult r = system->run();
        if (dump_stats) {
            std::ostringstream os;
            system->dumpStats(os);
            stats_text = os.str();
        }
        if (!json_path.empty())
            stats_json = toJson(system->stats());
        return r;
    };
    SweepRunner runner(std::move(ropt));
    runner.add(cfg.benchmark + "/" + schemeName(cfg.l2.scheme), cfg);
    const SweepEntry &entry = runner.run().front();

    if (!json_path.empty()) {
        Json doc = Json::object();
        doc.set("config", toJson(cfg));
        doc.set("ok", entry.ok);
        if (!entry.ok)
            doc.set("error", entry.error);
        doc.set("result", toJson(entry.result));
        doc.set("stats", stats_json);
        std::ofstream os(json_path);
        if (!os)
            cmt_fatal("cannot write %s", json_path.c_str());
        doc.write(os, 2);
    }

    if (!entry.ok) {
        std::cerr << "error: " << entry.error << "\n";
        return 1;
    }

    const SimResult &r = entry.result;
    std::cout << "\nbenchmark            : " << r.benchmark << " ("
              << schemeName(r.scheme) << ")\n"
              << "instructions         : " << r.instructions << "\n"
              << "cycles               : " << r.cycles << "\n"
              << "IPC                  : " << r.ipc << "\n"
              << "L2 data miss-rate    : " << r.l2DataMissRate << "\n"
              << "extra reads per miss : " << r.extraReadsPerMiss << "\n"
              << "DRAM bytes/cycle     : " << r.bandwidthBytesPerCycle
              << "\n"
              << "branch mispredicts   : " << r.branchMispredictRate
              << "\n"
              << "buffer stalls        : " << r.bufferStalls << "\n"
              << "integrity failures   : " << r.integrityFailures
              << "\n";
    if (dump_stats) {
        std::cout << "\n--- full statistics ---\n";
        std::cout << stats_text;
    }
    return 0;
}
