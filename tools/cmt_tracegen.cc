/**
 * @file
 * cmt_tracegen: dump a specgen benchmark to a CMT trace file, so runs
 * can be replayed exactly (or inspected / transformed by other
 * tooling).
 *
 *   cmt_tracegen --bench mcf --instr 1000000 --seed 1 --out mcf.cmtt
 */

#include <cstdio>
#include <string>

#include "cpu/trace.h"
#include "support/logging.h"
#include "trace/specgen.h"
#include "trace/trace_file.h"

using namespace cmt;

int
main(int argc, char **argv)
{
    std::string bench = "gcc", out;
    std::uint64_t instructions = 1'000'000, seed = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cmt_fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--bench")
            bench = value();
        else if (arg == "--instr")
            instructions = std::stoull(value());
        else if (arg == "--seed")
            seed = std::stoull(value());
        else if (arg == "--out")
            out = value();
        else
            cmt_fatal("unknown option '%s'", arg.c_str());
    }
    if (out.empty())
        cmt_fatal("--out FILE is required");

    SpecGen gen(profileFor(bench), seed);
    TraceWriter writer(out);
    TraceInstr instr;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        gen.next(instr);
        writer.append(instr);
    }
    std::printf("wrote %llu instructions of '%s' (seed %llu) to %s\n",
                static_cast<unsigned long long>(writer.written()),
                bench.c_str(), static_cast<unsigned long long>(seed),
                out.c_str());
    return 0;
}
