/**
 * @file
 * cmt_loadgen: concurrent load generator + correctness oracle for
 * cmt_served.
 *
 * Every client owns a disjoint slice of the store's protected region
 * and drives a deterministic mixed workload (55% writes, 45% verified
 * reads of blocks it wrote earlier in the run, a periodic sync) from
 * its own connection, keeping a local shadow model of every byte it
 * wrote. A read that disagrees with the
 * shadow is a divergence: the daemon returned bytes that no
 * serialization of the client's own writes could produce. Because
 * slices are disjoint and the daemon guarantees per-connection
 * ordering, the per-client FNV checksum stream is independent of how
 * clients interleave - an 8-client run must produce byte-identical
 * results to --serial replaying the same traces one connection at a
 * time, and `cmt_regress A.json B.json` proves it (host timing is the
 * one field regress ignores).
 *
 * Output follows the canonical Sweep JSON schema (one regress-
 * comparable row per client plus a "total" row, deterministic
 * result/config blocks); p50/p99 request latency and throughput go to
 * stderr and to a doc-level "timing" object that regress does not
 * compare.
 *
 *   cmt_loadgen --socket PATH [options]
 *
 *     --socket PATH        daemon socket (required)
 *     --store ID           target store id (default 0)
 *     --clients N          concurrent client connections (default 8)
 *     --ops N              operations per client
 *                          (default 2000, scaled by REPRO_SCALE)
 *     --block B            bytes per operation (default 64)
 *     --protected-size B   store capacity, must match the daemon
 *                          (default 1 MiB)
 *     --seed S             trace seed (default 1)
 *     --serial             run the same traces on one connection at a
 *                          time (the determinism oracle)
 *     --json PATH          write the sweep document here
 *
 * Exit status: 0 clean, 1 divergence/verify/transport failure,
 * 2 usage errors.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/client.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "support/json.h"
#include "support/logging.h"

using namespace cmt;

namespace
{

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct LoadOptions
{
    std::string socketPath;
    std::string jsonPath;
    std::uint32_t store = 0;
    unsigned clients = 8;
    std::uint64_t opsPerClient = 2000;
    std::uint32_t block = 64;
    std::uint64_t protectedSize = 1u << 20;
    std::uint64_t seed = 1;
    bool serial = false;
};

/** Deterministic per-client trace state (splitmix64). */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

struct ClientReport
{
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = kFnvBasis;
    std::uint64_t divergences = 0;
    std::string firstDivergence;
    /** Transport-level failure; empty when the trace completed. */
    std::string transportError;
    /** Per-request latency in microseconds. */
    std::vector<double> latencyUs;
    double wallSeconds = 0;
};

void
fold(std::uint64_t &sum, const void *data, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        sum ^= b[i];
        sum *= kFnvPrime;
    }
}

void
fold64(std::uint64_t &sum, std::uint64_t v)
{
    fold(sum, &v, sizeof v);
}

/** Strict positive byte-count parse (sizes exceed the worker-count
 *  range, so parseWorkerCount does not apply). */
std::uint64_t
parseBytes(const char *flag, const std::string &text)
{
    if (text.empty() || text[0] == '-')
        cmt_fatal("cmt_loadgen: %s expects a positive byte count, "
                  "got '%s'",
                  flag, text.c_str());
    errno = 0;
    char *end = nullptr;
    const unsigned long long n =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size() || n == 0)
        cmt_fatal("cmt_loadgen: %s expects a positive byte count, "
                  "got '%s'",
                  flag, text.c_str());
    return n;
}

/** Run one client's whole trace over its own connection. */
ClientReport
runClient(const LoadOptions &opt, unsigned index)
{
    using clock = std::chrono::steady_clock;
    ClientReport rep;
    rep.latencyUs.reserve(opt.opsPerClient);

    serve::Client client;
    std::string err;
    // The daemon may still be mid-start when the first client knocks.
    bool up = false;
    for (int attempt = 0; attempt < 50 && !up; ++attempt) {
        up = client.connectTo(opt.socketPath, &err);
        if (!up)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
    }
    if (!up) {
        rep.transportError = err;
        return rep;
    }

    const std::uint64_t sliceBytes =
        opt.protectedSize / opt.clients / opt.block * opt.block;
    const std::uint64_t sliceStart =
        static_cast<std::uint64_t>(index) * sliceBytes;
    const std::uint64_t blocksInSlice = sliceBytes / opt.block;
    if (blocksInSlice == 0) {
        rep.transportError = "protected region too small for this "
                             "many clients";
        return rep;
    }

    std::uint64_t rng = opt.seed * 0x2545f4914f6cdd1dull + index;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        shadow;
    /** Blocks this trace wrote, in write order; reads draw from here
     *  so the oracle never depends on the store's prior content (two
     *  loadgen runs may target one long-lived daemon). */
    std::vector<std::uint64_t> written;
    std::vector<std::uint8_t> data(opt.block);
    std::vector<std::uint8_t> got;

    const auto wallStart = clock::now();
    for (std::uint64_t op = 0; op < opt.opsPerClient; ++op) {
        const std::uint64_t pick = nextRand(rng);
        const bool write =
            written.empty() || nextRand(rng) % 100 < 55;
        const std::uint64_t addr =
            write ? sliceStart + (pick % blocksInSlice) * opt.block
                  : written[pick % written.size()];
        const auto t0 = clock::now();
        if (write) {
            for (std::uint32_t b = 0; b < opt.block; b += 8) {
                const std::uint64_t v = nextRand(rng);
                std::memcpy(data.data() + b, &v,
                            std::min<std::size_t>(8, opt.block - b));
            }
            const serve::CallResult r =
                client.writeBlock(opt.store, addr, data, &err);
            if (r != serve::CallResult::kOk) {
                rep.transportError = "write @" + std::to_string(addr) +
                                     ": " + err;
                return rep;
            }
            shadow[addr] = data;
            written.push_back(addr);
            fold64(rep.checksum, addr * 2 + 1);
            fold(rep.checksum, data.data(), data.size());
        } else {
            const serve::CallResult r = client.readBlock(
                opt.store, addr, opt.block, &got, &err);
            if (r != serve::CallResult::kOk) {
                rep.transportError = "read @" + std::to_string(addr) +
                                     ": " + err;
                return rep;
            }
            const auto it = shadow.find(addr);
            const bool match = it != shadow.end() && got == it->second;
            if (!match) {
                ++rep.divergences;
                if (rep.firstDivergence.empty())
                    rep.firstDivergence =
                        "read @" + std::to_string(addr) +
                        " disagrees with this client's own writes";
            }
            fold64(rep.checksum, addr * 2);
            fold(rep.checksum, got.data(), got.size());
        }
        const auto t1 = clock::now();
        rep.latencyUs.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
        rep.bytes += opt.block;
        ++rep.ops;
        // Periodic sync keeps the flush path under concurrent fire.
        if (op % 400 == 399 &&
            !client.syncStore(opt.store, &err)) {
            rep.transportError = "sync: " + err;
            return rep;
        }
    }
    rep.wallSeconds =
        std::chrono::duration<double>(clock::now() - wallStart)
            .count();
    return rep;
}

LoadOptions
parseArgs(int argc, char **argv)
{
    LoadOptions opt;
    const double scale = reproScale();
    opt.opsPerClient = static_cast<std::uint64_t>(2000 * scale);
    if (opt.opsPerClient == 0)
        opt.opsPerClient = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cmt_fatal("cmt_loadgen: missing value for %s",
                          arg.c_str());
            return argv[++i];
        };
        auto count = [&](const char *flag, const std::string &v) {
            unsigned out = 0;
            if (!parseWorkerCount(v, &out) || out == 0)
                cmt_fatal("cmt_loadgen: %s expects a positive count, "
                          "got '%s'",
                          flag, v.c_str());
            return out;
        };
        if (arg == "--socket") {
            opt.socketPath = value();
        } else if (arg == "--store") {
            unsigned sid = 0;
            const std::string v = value();
            if (!parseWorkerCount(v, &sid))
                cmt_fatal("cmt_loadgen: --store expects a store id, "
                          "got '%s'",
                          v.c_str());
            opt.store = sid;
        } else if (arg == "--clients") {
            opt.clients = count("--clients", value());
        } else if (arg == "--ops") {
            opt.opsPerClient = count("--ops", value());
        } else if (arg == "--block") {
            opt.block = count("--block", value());
        } else if (arg == "--protected-size") {
            opt.protectedSize =
                parseBytes("--protected-size", value());
        } else if (arg == "--seed") {
            opt.seed = count("--seed", value());
        } else if (arg == "--serial") {
            opt.serial = true;
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else if (arg == "--help" || arg == "-h") {
            inform("usage: cmt_loadgen --socket PATH [--store ID] "
                   "[--clients N] [--ops N] [--block B] "
                   "[--protected-size B] [--seed S] [--serial] "
                   "[--json PATH]");
            std::exit(0);
        } else {
            cmt_fatal("cmt_loadgen: unknown argument '%s' (try "
                      "--help)",
                      arg.c_str());
        }
    }
    if (opt.socketPath.empty())
        cmt_fatal("cmt_loadgen: --socket PATH is required");
    if (opt.block == 0 || opt.block % 8 != 0)
        cmt_fatal("cmt_loadgen: --block must be a positive multiple "
                  "of 8");
    return opt;
}

/** Percentile over a sorted sample set. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** One regress-comparable row in the micro packing convention. */
Json
rowJson(const std::string &label, const ClientReport &rep,
        std::uint64_t plannedOps)
{
    SweepJob job;
    job.label = label;
    job.config.benchmark = label;
    job.config.warmupInstructions = 0;
    job.config.measureInstructions = plannedOps;

    SweepEntry entry;
    entry.label = label;
    entry.hostSeconds = rep.wallSeconds;
    if (!rep.transportError.empty()) {
        entry.ok = false;
        entry.error = rep.transportError;
    } else if (rep.divergences != 0) {
        entry.ok = false;
        entry.error = std::to_string(rep.divergences) +
                      " divergences; first: " + rep.firstDivergence;
    } else {
        entry.result.benchmark = label;
        entry.result.instructions = rep.ops;
        entry.result.cycles = rep.checksum;
        entry.result.bandwidthBytesPerCycle =
            static_cast<double>(rep.bytes);
        entry.result.ipc =
            rep.ops != 0 ? static_cast<double>(rep.bytes) /
                               static_cast<double>(rep.ops)
                         : 0.0;
    }
    return toJson(job, entry);
}

} // namespace

int
main(int argc, char **argv)
{
    const LoadOptions opt = parseArgs(argc, argv);

    std::vector<ClientReport> reports(opt.clients);
    const auto wallStart = std::chrono::steady_clock::now();
    if (opt.serial) {
        for (unsigned i = 0; i < opt.clients; ++i)
            reports[i] = runClient(opt, i);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(opt.clients);
        for (unsigned i = 0; i < opt.clients; ++i)
            threads.emplace_back([&, i] {
                reports[i] = runClient(opt, i);
            });
        for (std::thread &t : threads)
            t.join();
    }
    const double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    // Whole-tree verification after the storm: the daemon's tree must
    // still be self-consistent.
    bool treeClean = false;
    std::string verifyErr;
    {
        serve::Client probe;
        std::string err;
        if (probe.connectTo(opt.socketPath, &err) &&
            probe.verifyStore(opt.store, &treeClean, &err)) {
            if (!treeClean)
                verifyErr = "daemon-side verifyAll found "
                            "inconsistent chunks";
        } else {
            verifyErr = "verify pass failed: " + err;
        }
    }

    // Aggregate + report.
    ClientReport total;
    std::vector<double> allLat;
    bool failed = !verifyErr.empty();
    for (unsigned i = 0; i < opt.clients; ++i) {
        const ClientReport &r = reports[i];
        total.ops += r.ops;
        total.bytes += r.bytes;
        fold64(total.checksum, r.checksum);
        total.divergences += r.divergences;
        allLat.insert(allLat.end(), r.latencyUs.begin(),
                      r.latencyUs.end());
        if (!r.transportError.empty() || r.divergences != 0)
            failed = true;
    }
    total.wallSeconds = wallSeconds;
    if (!verifyErr.empty())
        total.transportError = verifyErr;

    std::sort(allLat.begin(), allLat.end());
    const double p50 = percentile(allLat, 0.50);
    const double p99 = percentile(allLat, 0.99);
    const double throughput =
        wallSeconds > 0 ? static_cast<double>(total.ops) / wallSeconds
                        : 0;
    std::fprintf(stderr,
                 "  [loadgen] %u client(s)%s %llu ops in %.3fs: "
                 "%.0f ops/s, p50 %.1f us, p99 %.1f us, "
                 "%llu divergences, tree %s\n",
                 opt.clients, opt.serial ? " (serial)" : "",
                 static_cast<unsigned long long>(total.ops),
                 wallSeconds, throughput, p50, p99,
                 static_cast<unsigned long long>(total.divergences),
                 treeClean ? "clean" : "INCONSISTENT");

    if (!opt.jsonPath.empty()) {
        Json doc = Json::object();
        doc.set("figure", std::string("cmt_loadgen"));
        doc.set("repro_scale", reproScale());
        doc.set("jobs", opt.clients);
        Json runs = Json::array();
        for (unsigned i = 0; i < opt.clients; ++i)
            runs.push(rowJson("client" + std::to_string(i),
                              reports[i], opt.opsPerClient));
        runs.push(rowJson("total", total,
                          opt.opsPerClient * opt.clients));
        doc.set("runs", std::move(runs));
        // Timing sidecar: regress compares result/config blocks only,
        // so the latency numbers ride along without gating anything.
        Json timing = Json::object();
        timing.set("wall_seconds", wallSeconds);
        timing.set("ops_per_second", throughput);
        timing.set("p50_latency_us", p50);
        timing.set("p99_latency_us", p99);
        doc.set("timing", std::move(timing));
        std::ofstream os(opt.jsonPath);
        if (!os)
            cmt_fatal("cmt_loadgen: cannot write %s",
                      opt.jsonPath.c_str());
        doc.write(os, 2);
        std::fprintf(stderr, "  [loadgen] wrote %s\n",
                     opt.jsonPath.c_str());
    }

    for (unsigned i = 0; i < opt.clients; ++i) {
        const ClientReport &r = reports[i];
        if (!r.transportError.empty())
            warn("cmt_loadgen: client%u: %s", i,
                 r.transportError.c_str());
        else if (r.divergences != 0)
            warn("cmt_loadgen: client%u: %llu divergences (%s)", i,
                 static_cast<unsigned long long>(r.divergences),
                 r.firstDivergence.c_str());
    }
    if (!verifyErr.empty())
        warn("cmt_loadgen: %s", verifyErr.c_str());
    return failed ? 1 : 0;
}
