/**
 * @file
 * cmt_fuzz: differential cross-policy fuzzer (DESIGN.md section 9).
 *
 *   cmt_fuzz --seed S --iters N [--out-dir DIR] [--no-minimize]
 *   cmt_fuzz --replay FILE [--replay FILE ...]
 *   cmt_fuzz --replay-dir DIR
 *
 * Fuzz mode generates cases for seeds S, S+1, ..., S+N-1 and runs
 * each differentially across base / oracle / naive / cached /
 * incremental. A divergence is minimized (unless --no-minimize) and
 * written to --out-dir (default ".") as case_<seed>.json, ready to be
 * committed under tests/fuzz/corpus/.
 *
 * Replay mode re-executes committed cases: a case fails when the run
 * diverges or when its expect_detection contract disagrees with the
 * oracle's verdict.
 *
 * Output is bit-reproducible: everything derives from --seed, nothing
 * from the clock or the pid (cmt_lint enforces this for all fuzz and
 * test code).
 *
 * Exit status: 0 clean, 1 divergence or replay failure, 2 usage or
 * I/O errors.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differ.h"
#include "fuzz/trace_gen.h"

namespace fs = std::filesystem;
using namespace cmt;
using namespace cmt::fuzz;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr << "usage: cmt_fuzz --seed S --iters N [--out-dir DIR]"
                 " [--no-minimize]\n"
                 "       cmt_fuzz --replay FILE [--replay FILE ...]\n"
                 "       cmt_fuzz --replay-dir DIR\n";
    std::exit(2);
}

bool
readCaseFile(const std::string &path, FuzzCase *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "cmt_fuzz: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string error;
    if (!FuzzCase::parse(buf.str(), out, &error)) {
        std::cerr << "cmt_fuzz: " << path << ": " << error << "\n";
        return false;
    }
    return true;
}

/** @return true when the replayed case upholds its contract. */
bool
replayCase(const std::string &path)
{
    FuzzCase c;
    if (!readCaseFile(path, &c))
        std::exit(2);
    RunOutcome oracle;
    const Divergence d = runDifferential(c, &oracle);
    const std::string name = fs::path(path).filename().string();
    if (d.found) {
        std::cout << name << ": FAIL (" << d.kind << " on " << d.target
                  << ": " << d.detail << ")\n";
        return false;
    }
    const bool detected = oracle.detectedAt >= 0;
    if (detected != c.expectDetection) {
        std::cout << name << ": FAIL (expect_detection="
                  << (c.expectDetection ? "true" : "false")
                  << " but oracle "
                  << (detected ? "detected at index " +
                                     std::to_string(oracle.detectedAt)
                               : std::string("detected nothing"))
                  << ")\n";
        return false;
    }
    std::cout << name << ": PASS"
              << (detected ? " (detected at index " +
                                 std::to_string(oracle.detectedAt) + ")"
                           : " (clean)")
              << "\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 0;
    std::uint64_t iters = 0;
    bool haveSeed = false;
    bool haveIters = false;
    bool noMinimize = false;
    std::string outDir = ".";
    std::vector<std::string> replayFiles;
    std::string replayDir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        try {
            if (arg == "--seed") {
                seed = std::stoull(value());
                haveSeed = true;
            } else if (arg == "--iters") {
                iters = std::stoull(value());
                haveIters = true;
            } else if (arg == "--out-dir") {
                outDir = value();
            } else if (arg == "--no-minimize") {
                noMinimize = true;
            } else if (arg == "--replay") {
                replayFiles.push_back(value());
            } else if (arg == "--replay-dir") {
                replayDir = value();
            } else {
                usage();
            }
        } catch (const std::exception &) {
            usage();
        }
    }

    // ---- replay mode ------------------------------------------------
    if (!replayFiles.empty() || !replayDir.empty()) {
        if (haveSeed || haveIters)
            usage();
        if (!replayDir.empty()) {
            std::error_code ec;
            if (!fs::is_directory(replayDir, ec)) {
                std::cerr << "cmt_fuzz: no replay directory "
                          << replayDir << "\n";
                return 2;
            }
            for (const auto &entry :
                 fs::directory_iterator(replayDir, ec)) {
                if (entry.is_regular_file(ec) &&
                    entry.path().extension() == ".json")
                    replayFiles.push_back(entry.path().string());
            }
            std::sort(replayFiles.begin(), replayFiles.end());
            if (replayFiles.empty()) {
                std::cerr << "cmt_fuzz: no *.json cases in "
                          << replayDir << "\n";
                return 2;
            }
        }
        std::size_t failures = 0;
        for (const std::string &path : replayFiles)
            if (!replayCase(path))
                ++failures;
        std::cout << "cmt_fuzz: " << (failures == 0 ? "PASS" : "FAIL")
                  << " (" << replayFiles.size() << " cases, "
                  << failures << " failing)\n";
        return failures == 0 ? 0 : 1;
    }

    // ---- fuzz mode --------------------------------------------------
    if (!haveSeed || !haveIters || iters == 0)
        usage();

    std::size_t divergences = 0;
    for (std::uint64_t s = seed; s < seed + iters; ++s) {
        FuzzCase c = generateCase(s);
        RunOutcome oracle;
        Divergence d = runDifferential(c, &oracle);
        if (!d.found) {
            std::cout << "seed " << s << ": ok ("
                      << c.ops.size() << " ops, "
                      << (oracle.detectedAt >= 0 ? "detected" : "clean")
                      << ")\n";
            continue;
        }
        ++divergences;
        std::cout << "seed " << s << ": DIVERGENCE " << d.kind
                  << " on " << d.target << " (" << d.detail << ")\n";
        FuzzCase emit = c;
        if (!noMinimize) {
            emit = minimizeCase(c, d.kind);
            std::cout << "seed " << s << ": minimized "
                      << c.ops.size() << " -> " << emit.ops.size()
                      << " ops\n";
        }
        emit.note = "divergence " + d.kind + " on " + d.target +
                    " (seed " + std::to_string(s) + ")";
        emit.expectDetection = oracle.detectedAt >= 0;
        const fs::path out =
            fs::path(outDir) / ("case_" + std::to_string(s) + ".json");
        std::error_code ec;
        fs::create_directories(outDir, ec);
        std::ofstream os(out, std::ios::binary);
        if (!os) {
            std::cerr << "cmt_fuzz: cannot write " << out.string()
                      << "\n";
            return 2;
        }
        os << emit.dump();
        std::cout << "seed " << s << ": wrote " << out.string()
                  << "\n";
    }
    std::cout << "cmt_fuzz: " << (divergences == 0 ? "PASS" : "FAIL")
              << " (" << iters << " seeds, " << divergences
              << " divergent)\n";
    return divergences == 0 ? 0 : 1;
}
