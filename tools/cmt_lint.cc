/**
 * @file
 * cmt_lint - the repo-specific static analysis pass.
 *
 * Scans src/, bench/, tools/, tests/ and examples/ (or explicit
 * paths) for violations of CMT's correctness invariants: see
 * lint_rules.h for the rule catalogue and the
 * `// cmt-lint: allow(<rule>)` suppression syntax.
 *
 * Exit codes (contract covered by tests/tools/test_lint.cc):
 *   0  clean
 *   1  at least one diagnostic
 *   2  usage or I/O error (unreadable explicit path)
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace
{

void
usage()
{
    std::printf(
        "usage: cmt_lint [--root DIR] [PATH...]\n"
        "  Lints PATHs (files or directories). With no PATH, lints\n"
        "  src/ bench/ tools/ tests/ examples/ under --root\n"
        "  (default: current directory).\n"
        "  Suppress one finding with '// cmt-lint: allow(<rule>)'.\n"
        "rules:\n");
    for (const std::string &rule : cmt::lint::ruleNames())
        std::printf("  %s\n", rule.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "cmt_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "cmt_lint: unknown option '%s' (try "
                         "--help)\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        // Default sweep: whichever of the standard trees exist under
        // --root (a partial checkout is not an error).
        for (const char *dir :
             {"src", "bench", "tools", "tests", "examples"}) {
            std::error_code ec;
            const std::string p = root + "/" + dir;
            if (std::filesystem::is_directory(p, ec))
                paths.push_back(p);
        }
        if (paths.empty()) {
            std::fprintf(stderr,
                         "cmt_lint: no lintable directories under "
                         "'%s'\n",
                         root.c_str());
            return 2;
        }
    }

    const std::vector<cmt::lint::Diagnostic> diags =
        cmt::lint::lintPaths(paths);

    bool ioError = false;
    std::size_t findings = 0;
    for (const cmt::lint::Diagnostic &d : diags) {
        if (d.rule == "io") {
            std::fprintf(stderr, "cmt_lint: %s: %s\n",
                         d.file.c_str(), d.message.c_str());
            ioError = true;
            continue;
        }
        std::fprintf(stderr, "%s:%d: [%s] %s\n", d.file.c_str(),
                     d.line, d.rule.c_str(), d.message.c_str());
        ++findings;
    }
    if (ioError)
        return 2;
    if (findings > 0) {
        std::fprintf(stderr, "cmt_lint: %zu finding%s\n", findings,
                     findings == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
