/**
 * @file
 * cmt_served: verification-as-a-service over a unix-domain socket.
 *
 * The daemon owns one or more integrity-protected stores (a sharded
 * Merkle tree over a sparse RAM image, src/verify) and serves
 * read/write/verify/sync/save requests from many concurrent clients
 * over the length-prefixed binary protocol of src/serve. SIGINT or
 * SIGTERM (or a client kShutdown) stops it gracefully: queued
 * requests finish, replies flush, and - when --state-dir is given -
 * every store is persisted through the crash-safe tmp+rename save
 * path, so the next --load starts from a verified snapshot.
 *
 *   cmt_served --socket PATH [options]
 *
 *     --socket PATH          listening socket path (required)
 *     --stores N             independent stores to host (default 1)
 *     --shards K             subtrees per store (default 4)
 *     --protected-size B     bytes protected per store (default 1 MiB)
 *     --cache-chunks N       trusted chunk cache entries (default 64)
 *     --workers N            request worker threads (default 2)
 *     --queue-depth N        per-connection pending cap (default 64)
 *     --state-dir DIR        save stores here on shutdown / kSave
 *     --load                 restore saved state at startup
 */

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <string>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/store.h"
#include "sim/runner.h"
#include "support/logging.h"
#include "verify/merkle_memory.h"

using namespace cmt;

namespace
{

std::atomic<serve::Server *> g_server{nullptr};

extern "C" void
handleStopSignal(int)
{
    // requestStop is async-signal-safe: atomic store + eventfd write.
    serve::Server *server = g_server.load();
    if (server != nullptr)
        server->requestStop();
}

/** Strict positive byte-count parse (no suffixes, no wrapping). */
std::uint64_t
parseBytes(const char *flag, const std::string &text)
{
    if (text.empty() || text[0] == '-')
        cmt_fatal("cmt_served: %s expects a positive byte count, got "
                  "'%s'",
                  flag, text.c_str());
    errno = 0;
    char *end = nullptr;
    const unsigned long long n =
        std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size() || n == 0)
        cmt_fatal("cmt_served: %s expects a positive byte count, got "
                  "'%s'",
                  flag, text.c_str());
    return n;
}

unsigned
parseCount(const char *flag, const std::string &text)
{
    unsigned out = 0;
    if (!parseWorkerCount(text, &out))
        cmt_fatal("cmt_served: %s expects a small non-negative count, "
                  "got '%s'",
                  flag, text.c_str());
    return out;
}

struct DaemonOptions
{
    std::string socketPath;
    std::string stateDir;
    unsigned stores = 1;
    unsigned shards = 4;
    std::uint64_t protectedSize = 1u << 20;
    unsigned cacheChunks = 64;
    unsigned workers = 2;
    unsigned queueDepth = 64;
    bool load = false;
};

DaemonOptions
parseArgs(int argc, char **argv)
{
    DaemonOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cmt_fatal("cmt_served: missing value for %s",
                          arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socketPath = value();
        } else if (arg == "--stores") {
            opt.stores = parseCount("--stores", value());
        } else if (arg == "--shards") {
            opt.shards = parseCount("--shards", value());
        } else if (arg == "--protected-size") {
            opt.protectedSize = parseBytes("--protected-size", value());
        } else if (arg == "--cache-chunks") {
            opt.cacheChunks = parseCount("--cache-chunks", value());
        } else if (arg == "--workers") {
            opt.workers = parseCount("--workers", value());
        } else if (arg == "--queue-depth") {
            opt.queueDepth = parseCount("--queue-depth", value());
        } else if (arg == "--state-dir") {
            opt.stateDir = value();
        } else if (arg == "--load") {
            opt.load = true;
        } else if (arg == "--help" || arg == "-h") {
            inform("usage: cmt_served --socket PATH [--stores N] "
                   "[--shards K] [--protected-size B] "
                   "[--cache-chunks N] [--workers N] [--queue-depth N] "
                   "[--state-dir DIR] [--load]");
            std::exit(0);
        } else {
            cmt_fatal("cmt_served: unknown argument '%s' (try --help)",
                      arg.c_str());
        }
    }
    if (opt.socketPath.empty())
        cmt_fatal("cmt_served: --socket PATH is required");
    if (opt.stores == 0)
        cmt_fatal("cmt_served: --stores must be at least 1");
    if (opt.load && opt.stateDir.empty())
        cmt_fatal("cmt_served: --load requires --state-dir");
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const DaemonOptions opt = parseArgs(argc, argv);

    MerkleConfig mc;
    mc.protectedSize = opt.protectedSize;
    mc.cacheChunks = opt.cacheChunks;
    mc.shards = opt.shards == 0 ? 1 : opt.shards;

    serve::ServeConfig sc;
    sc.socketPath = opt.socketPath;
    sc.workers = opt.workers;
    sc.queueDepth = opt.queueDepth == 0 ? 1 : opt.queueDepth;

    serve::Server server(sc);
    for (unsigned i = 0; i < opt.stores; ++i) {
        const std::string name = "store" + std::to_string(i);
        auto store = std::make_unique<serve::ServeStore>(name, mc);
        if (!opt.stateDir.empty())
            store->setStatePaths(opt.stateDir + "/" + name + ".image",
                                 opt.stateDir + "/" + name + ".roots");
        if (opt.load) {
            bool loaded = false;
            std::string err;
            if (!store->loadStateIfPresent(&loaded, &err))
                cmt_fatal("cmt_served: restoring %s: %s", name.c_str(),
                          err.c_str());
            inform("cmt_served: %s %s", name.c_str(),
                   loaded ? "restored from saved snapshot"
                          : "starting fresh (no snapshot found)");
        }
        server.addStore(std::move(store));
    }

    std::string err;
    if (!server.start(&err))
        cmt_fatal("cmt_served: %s", err.c_str());

    g_server.store(&server);
    struct sigaction sa = {};
    sa.sa_handler = handleStopSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    inform("cmt_served: listening on %s (%u stores, %u shards, "
           "%llu bytes each, %u workers)",
           opt.socketPath.c_str(), opt.stores, mc.shards,
           static_cast<unsigned long long>(opt.protectedSize),
           sc.workers == 0 ? 1u : sc.workers);

    server.waitUntilStopped();
    g_server.store(nullptr);

    int rc = 0;
    if (!opt.stateDir.empty()) {
        for (std::uint32_t i = 0; i < server.storeCount(); ++i) {
            serve::ServeStore *store = server.store(i);
            std::string saveErr;
            if (store->saveState(&saveErr)) {
                inform("cmt_served: saved %s", store->name().c_str());
            } else {
                warn("cmt_served: saving %s failed: %s",
                     store->name().c_str(), saveErr.c_str());
                rc = 1;
            }
        }
    }
    const serve::ServerStats stats = server.statsSnapshot();
    inform("cmt_served: served %llu requests on %llu connections "
           "(%llu reads, %llu writes, %llu verify failures)",
           static_cast<unsigned long long>(stats.requests),
           static_cast<unsigned long long>(stats.connections),
           static_cast<unsigned long long>(stats.readOps),
           static_cast<unsigned long long>(stats.writeOps),
           static_cast<unsigned long long>(stats.verifyFailures));
    return rc;
}
