/**
 * @file
 * cmt_analyze - whole-program static analysis for CMT.
 *
 * Where cmt_lint checks one line at a time, cmt_analyze builds a
 * cross-translation-unit symbol index (tools/analyze/) and runs four
 * whole-program passes: trust-boundary (the paper's
 * verify-before-use invariant as a taint rule), lock-order (deadlock
 * freedom over MutexLock acquisition chains), error-discipline
 * (discarded verify/persistence verdicts), and include-hygiene.
 * Suppress one finding with `// cmt-analyze: allow(<rule>)`.
 *
 * Exit codes (contract covered by tests/tools/test_analyze.cc):
 *   0  clean
 *   1  at least one diagnostic
 *   2  usage or I/O error (unreadable explicit path)
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/analysis.h"

namespace
{

void
usage()
{
    std::printf(
        "usage: cmt_analyze [--root DIR] [--cache-dir DIR]\n"
        "                   [--rule NAME]... [--stats] [PATH...]\n"
        "  Indexes PATHs (files or directories). With no PATH,\n"
        "  indexes src/ tools/ bench/ under --root (default: the\n"
        "  current directory) and runs every pass.\n"
        "  --cache-dir persists per-file summaries so unchanged\n"
        "  files skip re-parsing; --rule restricts the passes run.\n"
        "  Suppress one finding with "
        "'// cmt-analyze: allow(<rule>)'.\n"
        "rules:\n");
    for (const std::string &rule : cmt::analyze::ruleNames())
        std::printf("  %s\n", rule.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    cmt::analyze::AnalyzeOptions options;
    bool stats = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "cmt_analyze: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--root") {
            const char *v = value("--root");
            if (v == nullptr)
                return 2;
            options.root = v;
        } else if (arg == "--cache-dir") {
            const char *v = value("--cache-dir");
            if (v == nullptr)
                return 2;
            options.cacheDir = v;
        } else if (arg == "--rule") {
            const char *v = value("--rule");
            if (v == nullptr)
                return 2;
            const std::vector<std::string> known =
                cmt::analyze::ruleNames();
            if (std::find(known.begin(), known.end(), v) ==
                known.end()) {
                std::fprintf(stderr,
                             "cmt_analyze: unknown rule '%s' (try "
                             "--help)\n",
                             v);
                return 2;
            }
            options.rules.push_back(v);
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "cmt_analyze: unknown option '%s' (try "
                         "--help)\n",
                         arg.c_str());
            return 2;
        } else {
            options.paths.push_back(arg);
        }
    }

    const cmt::analyze::AnalyzeReport report =
        cmt::analyze::analyzeTree(options);

    bool ioError = false;
    std::size_t findings = 0;
    for (const cmt::analyze::Diagnostic &d : report.diagnostics) {
        if (d.rule == "io") {
            std::fprintf(stderr, "cmt_analyze: %s: %s\n",
                         d.file.c_str(), d.message.c_str());
            ioError = true;
            continue;
        }
        std::fprintf(stderr, "%s:%d: [%s] %s\n", d.file.c_str(),
                     d.line, d.rule.c_str(), d.message.c_str());
        ++findings;
    }
    if (stats)
        std::fprintf(stderr,
                     "cmt_analyze: indexed %zu files (%zu from "
                     "cache)\n",
                     report.filesIndexed, report.cacheHits);
    if (report.filesIndexed == 0) {
        std::fprintf(stderr,
                     "cmt_analyze: nothing to analyze under '%s'\n",
                     options.root.c_str());
        return 2;
    }
    if (ioError)
        return 2;
    if (findings > 0) {
        std::fprintf(stderr, "cmt_analyze: %zu finding%s\n",
                     findings, findings == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
