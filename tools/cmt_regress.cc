/**
 * @file
 * cmt_regress: guard the repo's reproduced numbers against drift.
 *
 *   cmt_regress [options]                  directory mode
 *   cmt_regress [options] BASELINE CURRENT file mode
 *
 *     --baselines DIR    committed baselines (default results/baselines)
 *     --results DIR      fresh sweep output  (default results)
 *     --time-tolerance R also flag host_seconds ratios beyond R
 *     --verbose          list matched rows too
 *
 * Directory mode pairs every baselines/<figure>.json with
 * results/<figure>.json and compares them; a baseline without a fresh
 * counterpart is itself a failure (the tracked experiment silently
 * stopped running). Extra result files without baselines are noted
 * but allowed - new experiments gain baselines when they are ready.
 *
 * Exit status: 0 all clean, 1 any drift/missing/incomparable,
 * 2 usage or I/O errors.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/regress.h"
#include "support/json.h"

namespace fs = std::filesystem;
using namespace cmt;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: cmt_regress [--baselines DIR] [--results DIR]\n"
           "                   [--time-tolerance R] [--verbose]\n"
           "                   [BASELINE.json CURRENT.json]\n";
    std::exit(2);
}

bool
readJsonFile(const std::string &path, Json *out, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string parseError;
    if (!Json::parse(buf.str(), out, &parseError)) {
        *error = path + ": " + parseError;
        return false;
    }
    return true;
}

/** @return true when the comparison is clean. */
bool
compareFiles(const std::string &baselinePath,
             const std::string &currentPath,
             const RegressOptions &options, bool verbose)
{
    Json baseline, current;
    std::string error;
    if (!readJsonFile(baselinePath, &baseline, &error) ||
        !readJsonFile(currentPath, &current, &error)) {
        std::cerr << "cmt_regress: " << error << "\n";
        std::exit(2);
    }
    RegressReport report = compareSweeps(baseline, current, options);
    if (report.figure.empty())
        report.figure = fs::path(baselinePath).stem().string();
    printReport(std::cout, report, verbose);
    return report.clean();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinesDir = "results/baselines";
    std::string resultsDir = "results";
    RegressOptions options;
    bool verbose = false;
    std::vector<std::string> positional;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--baselines") {
            baselinesDir = value();
        } else if (arg == "--results") {
            resultsDir = value();
        } else if (arg == "--time-tolerance") {
            try {
                options.timeTolerance = std::stod(value());
            } catch (const std::exception &) {
                usage();
            }
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            positional.push_back(arg);
        }
    }

    if (positional.size() == 2) {
        const bool clean = compareFiles(positional[0], positional[1],
                                        options, verbose);
        std::cout << "cmt_regress: " << (clean ? "PASS" : "FAIL")
                  << "\n";
        return clean ? 0 : 1;
    }
    if (!positional.empty())
        usage();

    std::error_code ec;
    if (!fs::is_directory(baselinesDir, ec)) {
        std::cerr << "cmt_regress: no baseline directory "
                  << baselinesDir << "\n";
        return 2;
    }
    std::vector<std::string> baselines;
    for (const auto &entry : fs::directory_iterator(baselinesDir, ec)) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".json")
            baselines.push_back(entry.path().string());
    }
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
        std::cerr << "cmt_regress: no *.json baselines in "
                  << baselinesDir << "\n";
        return 2;
    }

    std::size_t failures = 0;
    for (const std::string &baselinePath : baselines) {
        const fs::path name = fs::path(baselinePath).filename();
        const fs::path currentPath = fs::path(resultsDir) / name;
        if (!fs::is_regular_file(currentPath, ec)) {
            std::cout << name.stem().string()
                      << ": FAIL (baseline has no fresh sweep at "
                      << currentPath.string() << ")\n";
            ++failures;
            continue;
        }
        if (!compareFiles(baselinePath, currentPath.string(), options,
                          verbose))
            ++failures;
    }

    std::cout << "cmt_regress: " << (failures == 0 ? "PASS" : "FAIL")
              << " (" << baselines.size() << " figures, " << failures
              << " failing)\n";
    return failures == 0 ? 0 : 1;
}
