/**
 * @file
 * DMA into protected memory (Section 5.7).
 *
 * Devices write by DMA without the processor - so the tree cannot
 * cover the data when it lands. The paper's recipe: let the DMA
 * target memory the tree treats as unprotected, then have the
 * processor rebuild the covering subtree before the application
 * checks the payload with its own scheme.
 *
 *   $ ./dma_ingest
 */

#include <cstdio>
#include <numeric>
#include <vector>

#include "mem/backing_store.h"
#include "verify/merkle_memory.h"

using namespace cmt;

int
main()
{
    BackingStore ram;
    MerkleConfig cfg;
    cfg.protectedSize = 1 << 20;
    cfg.cacheChunks = 64;
    MerkleMemory memory(ram, cfg);

    // Application state established under protection.
    memory.store64(0, 0x600D);

    // A NIC DMAs a 4 KB packet buffer into [64K, 68K).
    std::vector<std::uint8_t> packet(4096);
    std::iota(packet.begin(), packet.end(), 0);
    memory.dmaWrite(64 << 10, packet);
    std::printf("DMA landed 4096 bytes at 0x10000 (tree not "
                "updated).\n");

    // Reading it through the verified path must fail: the data has an
    // untrusted origin and the tree knows nothing about it.
    try {
        std::uint8_t b;
        memory.load(64 << 10, {&b, 1});
        std::printf("verified read of DMA data succeeded (bug!)\n");
        return 1;
    } catch (const IntegrityException &) {
        std::printf("verified read before rebuild: IntegrityException "
                    "(as designed).\n");
    }

    // ReadWithoutChecking (Section 5.7): the processor inspects the
    // payload via the unprotected path, e.g. to checksum it...
    std::uint8_t first;
    memory.ram().read(memory.layout().dataToRam(64 << 10), {&first, 1});
    std::printf("ReadWithoutChecking(0x10000) = %u\n", first);

    // ...then rebuilds the covering subtree to adopt the data.
    memory.rebuild(64 << 10, packet.size());
    std::vector<std::uint8_t> adopted(packet.size());
    memory.load(64 << 10, adopted);
    std::printf("after rebuild: verified read %s; prior state intact "
                "(%llx)\n",
                adopted == packet ? "matches the DMA payload" : "DIFFERS",
                static_cast<unsigned long long>(memory.load64(0)));

    memory.flush();
    std::printf("tree consistent: %s\n",
                memory.verifyAll() ? "yes" : "NO");
    return 0;
}
