/**
 * @file
 * Quickstart: integrity-verified memory in a dozen lines.
 *
 * Build the tree over untrusted RAM, read and write through it, and
 * watch a one-bit tamper (and a replay of stale-but-authentic data)
 * get caught.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "mem/backing_store.h"
#include "verify/adversary.h"
#include "verify/merkle_memory.h"

using namespace cmt;

int
main()
{
    // Untrusted RAM: in the paper's threat model, everything outside
    // the processor die. The hash tree and the data both live here.
    BackingStore ram;

    MerkleConfig config;
    config.protectedSize = 16 << 20; // protect 16 MB
    config.cacheChunks = 256;        // trusted on-chip chunk cache
    MerkleMemory memory(ram, config);

    std::printf("protected capacity : %llu bytes\n",
                static_cast<unsigned long long>(memory.size()));
    std::printf("tree levels        : %u (arity %llu)\n",
                memory.layout().levels(),
                static_cast<unsigned long long>(memory.layout().arity()));

    // Ordinary reads and writes; the tree is maintained underneath.
    memory.store64(0x1000, 42);
    memory.store64(0x2000, 1337);
    std::printf("verified loads     : %llu, %llu\n",
                static_cast<unsigned long long>(memory.load64(0x1000)),
                static_cast<unsigned long long>(memory.load64(0x2000)));

    memory.flush();
    std::printf("tree consistent    : %s\n",
                memory.verifyAll() ? "yes" : "NO");

    // A physical attacker flips one bit of RAM behind our back.
    Adversary adversary(memory.ram());
    adversary.flipBit(memory.layout().dataToRam(0x1000), 3);
    memory.clearCache(); // force the next load to re-verify from RAM

    try {
        (void)memory.load64(0x1000);
        std::printf("tamper detected    : NO (this is a bug!)\n");
        return 1;
    } catch (const IntegrityException &e) {
        std::printf("tamper detected    : yes (%s)\n", e.what());
    }

    // Put the bit back; the memory verifies again.
    adversary.flipBit(memory.layout().dataToRam(0x1000), 3);
    std::printf("after undo         : load64 -> %llu\n",
                static_cast<unsigned long long>(memory.load64(0x1000)));
    return 0;
}
