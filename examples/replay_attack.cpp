/**
 * @file
 * The Section 4.4 replay attack, end to end.
 *
 * A victim loop copies data out of a secure compartment:
 *
 *     for (i = 0; i < size; i++) { outputData(*data++); }
 *
 * Under XOM-style protection (encryption + address-bound MACs, no
 * freshness), the adversary records the memory record holding `i` and
 * replays it every iteration. The loop never sees i reach `size` and
 * walks far past the end of the array, leaking the secrets stored
 * after it. The same attack against hash-tree memory dies on the
 * first replayed load.
 *
 *   $ ./replay_attack
 */

#include <cstdio>
#include <vector>

#include "mem/backing_store.h"
#include "verify/adversary.h"
#include "verify/merkle_memory.h"
#include "verify/xom_memory.h"

using namespace cmt;

namespace
{

constexpr std::uint64_t kI = 0;        // loop counter location
constexpr std::uint64_t kArray = 1024; // public output array
constexpr std::uint64_t kSize = 8;     // intended iteration bound
constexpr int kSecrets = 4;            // secret words after the array

} // namespace

int
main()
{
    Key128 compartment_key;
    compartment_key.fill(0xC0);

    std::printf("victim loop: for (i = 0; i < %llu; i++) "
                "output(data[i]);\n\n",
                static_cast<unsigned long long>(kSize));

    // ---- XOM: encrypted, MACed, address-bound ... but replayable ---
    {
        BackingStore ram;
        XomMemory xom(ram, 8192, compartment_key);
        Adversary adversary(ram);

        for (std::uint64_t j = 0; j < kSize; ++j)
            xom.store64(kArray + 8 * j, 1000 + j); // public data
        for (int j = 0; j < kSecrets; ++j)
            xom.store64(kArray + 8 * (kSize + j), 0x5EC7E7 + j);

        xom.store64(kI, 0);
        const auto stale_i =
            adversary.capture(xom.recordAddr(0), xom.recordSize());

        std::printf("[XOM] adversary pins i by replaying its stale "
                    "record each iteration:\n");
        std::vector<std::uint64_t> leaked;
        // The attacker lets the loop run until the secrets have been
        // output; the pinned counter means it would never stop alone.
        for (std::uint64_t step = 0; step < kSize + kSecrets; ++step) {
            const std::uint64_t i = xom.load64(kI);
            if (i >= kSize)
                break;
            // The adversary also advances `data` walking: in the
            // paper the pointer lives in a register; each iteration
            // outputs data[step] while i stays pinned.
            leaked.push_back(xom.load64(kArray + 8 * step));
            xom.store64(kI, i + 1);
            adversary.replay(xom.recordAddr(0), stale_i);
        }
        std::printf("[XOM] loop emitted %zu values (bound was %llu): ",
                    leaked.size(),
                    static_cast<unsigned long long>(kSize));
        for (std::size_t j = 0; j < leaked.size(); ++j)
            std::printf("%s0x%llx", j ? ", " : "",
                        static_cast<unsigned long long>(leaked[j]));
        std::printf("\n[XOM] the last %d values are the SECRETS - "
                    "leaked!\n\n",
                    kSecrets);
    }

    // ---- Hash tree: the identical move is caught immediately -------
    {
        BackingStore ram;
        MerkleConfig cfg;
        cfg.protectedSize = 8192;
        cfg.cacheChunks = 0; // uncached: every load verified
        MerkleMemory memory(ram, cfg);
        Adversary adversary(memory.ram());

        for (std::uint64_t j = 0; j < kSize + kSecrets; ++j)
            memory.store64(kArray + 8 * j, 1000 + j);
        memory.store64(kI, 0);

        const std::uint64_t i_chunk_addr = memory.layout().chunkAddr(
            memory.layout().chunkOf(memory.layout().dataToRam(kI)));
        const auto stale_i = adversary.capture(i_chunk_addr, 64);

        std::printf("[tree] same adversary against Merkle memory:\n");
        std::size_t emitted = 0;
        try {
            for (std::uint64_t step = 0; step < kSize + kSecrets;
                 ++step) {
                const std::uint64_t i = memory.load64(kI);
                if (i >= kSize)
                    break;
                (void)memory.load64(kArray + 8 * step);
                ++emitted;
                memory.store64(kI, i + 1);
                adversary.replay(i_chunk_addr, stale_i);
            }
            std::printf("[tree] attack went undetected (bug!)\n");
            return 1;
        } catch (const IntegrityException &e) {
            std::printf("[tree] IntegrityException after %zu "
                        "iteration(s): %s\n",
                        emitted, e.what());
            std::printf("[tree] freshness enforced - nothing beyond "
                        "the bound leaks.\n");
        }
    }
    return 0;
}
