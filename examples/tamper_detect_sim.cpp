/**
 * @file
 * Drive the full cycle-level secure processor, tamper with DRAM in
 * the middle of the run, and watch the background checks (Section
 * 5.8: speculative, imprecise) catch it while the pipeline keeps
 * moving.
 *
 *   $ ./tamper_detect_sim [benchmark]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/system.h"

using namespace cmt;

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.benchmark = argc > 1 ? argv[1] : "twolf";
    cfg.warmupInstructions = 0;
    cfg.measureInstructions = 400'000;
    cfg.l2.scheme = Scheme::kCached;

    System system(cfg);
    printConfigTable(std::cout, cfg);

    auto &events = system.events();
    Cycle cycle = 0;
    auto run_to = [&](std::uint64_t instructions) {
        while (system.core().committed() < instructions) {
            events.runUntil(cycle);
            system.core().tick();
            ++cycle;
        }
    };

    std::printf("\nphase 1: %s runs cleanly...\n",
                cfg.benchmark.c_str());
    run_to(150'000);
    std::printf("  %llu instructions, %llu cycles, checks so far "
                "failed: %llu\n",
                static_cast<unsigned long long>(
                    system.core().committed()),
                static_cast<unsigned long long>(cycle),
                static_cast<unsigned long long>(
                    system.l2().integrityFailures()));

    std::printf("phase 2: adversary rewrites 64KB of DRAM at cycle "
                "%llu...\n",
                static_cast<unsigned long long>(cycle));
    const auto &layout = system.l2().layout();
    for (std::uint64_t addr = 64ULL << 20;
         addr < (64ULL << 20) + (64 << 10); addr += 64) {
        std::uint8_t poison[8] = {0xDE, 0xAD, 0xBE, 0xEF};
        system.ram().write(layout.dataToRam(addr), poison);
    }

    std::printf("phase 3: execution continues; checks complete in the "
                "background...\n");
    run_to(400'000);

    const auto failures = system.l2().integrityFailures();
    std::printf("\nresult: %llu integrity exception(s) raised.\n",
                static_cast<unsigned long long>(failures));
    std::printf("%s\n",
                failures > 0
                    ? "The processor would abort the task and destroy "
                      "its signing key\n(Section 5.8): no certificate "
                      "for tampered execution can exist."
                    : "No tampered line was touched this run - rerun "
                      "with another benchmark.");
    return failures > 0 ? 0 : 1;
}
