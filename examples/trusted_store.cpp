/**
 * @file
 * A trusted key-value store on untrusted storage - the Maheshwari/
 * Vingralek/Shapiro use case from the paper's related work, built on
 * MerkleMemory plus the persistence layer.
 *
 * Run once to create the store, again to reopen and verify it, and
 * with "tamper" to corrupt the on-disk image between sessions:
 *
 *   $ ./trusted_store write      # create and persist
 *   $ ./trusted_store read       # reopen, verify, read back
 *   $ ./trusted_store tamper     # corrupt the untrusted image
 *   $ ./trusted_store read       # -> IntegrityException
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "mem/backing_store.h"
#include "verify/merkle_memory.h"
#include "verify/persistence.h"

using namespace cmt;

namespace
{

const char *kRamPath = "trusted_store.ram";
const char *kRootPath = "trusted_store.roots";


/**
 * Offline attacker with knowledge of the image format: locate the
 * page record holding @p ram_addr and flip one bit of its payload.
 * @return true if the page was found.
 */
bool
flipBitInImage(const std::string &path, std::uint64_t ram_addr)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr)
        return false;
    char magic[8];
    std::uint8_t n8[8];
    if (std::fread(magic, 1, 8, f) != 8 ||
        std::fread(n8, 1, 8, f) != 8) {
        std::fclose(f);
        return false;
    }
    std::uint64_t pages = 0;
    for (int i = 7; i >= 0; --i)
        pages = (pages << 8) | n8[i];
    const std::uint64_t target_page = ram_addr / 4096;
    const std::uint64_t offset_in_page = ram_addr % 4096;
    bool found = false;
    for (std::uint64_t p = 0; p < pages; ++p) {
        std::uint8_t idx8[8];
        if (std::fread(idx8, 1, 8, f) != 8)
            break;
        std::uint64_t index = 0;
        for (int i = 7; i >= 0; --i)
            index = (index << 8) | idx8[i];
        const long payload = std::ftell(f);
        if (index == target_page) {
            std::fseek(f, payload + static_cast<long>(offset_in_page),
                       SEEK_SET);
            const int c = std::fgetc(f);
            std::fseek(f, payload + static_cast<long>(offset_in_page),
                       SEEK_SET);
            std::fputc(c ^ 0x10, f);
            found = true;
            break;
        }
        std::fseek(f, payload + 4096, SEEK_SET);
    }
    std::fclose(f);
    return found;
}


MerkleConfig
config()
{
    MerkleConfig cfg;
    cfg.protectedSize = 1 << 20;
    cfg.cacheChunks = 64;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string mode = argc > 1 ? argv[1] : "write";

    if (mode == "write") {
        BackingStore ram;
        MerkleMemory memory(ram, config());
        for (std::uint64_t key = 0; key < 1000; ++key)
            memory.store64(8 * key, key * key + 7);
        saveUntrustedImage(memory, ram, kRamPath);
        saveTrustedRoots(memory, kRootPath);
        std::printf("wrote 1000 records; image in %s, roots in %s\n",
                    kRamPath, kRootPath);
        std::printf("(the roots file stands in for processor-sealed "
                    "trusted storage)\n");
        return 0;
    }

    if (mode == "tamper") {
        // Flip one bit of a record the store definitely holds, as an
        // offline attacker who understands the image layout would.
        BackingStore ram;
        MerkleMemory memory(ram, config());
        const std::uint64_t target =
            memory.layout().dataToRam(8 * 123);
        if (!flipBitInImage(kRamPath, target)) {
            std::printf("run './trusted_store write' first\n");
            return 1;
        }
        std::printf("flipped one bit of record 123 inside %s\n",
                    kRamPath);
        return 0;
    }

    if (mode == "read") {
        BackingStore ram;
        MerkleMemory memory(ram, config());
        loadState(memory, ram, kRamPath, kRootPath);
        try {
            std::uint64_t sum = 0;
            for (std::uint64_t key = 0; key < 1000; ++key)
                sum += memory.load64(8 * key);
            std::printf("verified 1000 records, checksum %llu\n",
                        static_cast<unsigned long long>(sum));
            std::printf("store intact.\n");
            return 0;
        } catch (const IntegrityException &e) {
            std::printf("INTEGRITY FAILURE: %s\n", e.what());
            std::printf("the untrusted image was modified offline - "
                        "refusing to serve data.\n");
            return 1;
        }
    }

    std::printf("usage: trusted_store [write|read|tamper]\n");
    return 2;
}
