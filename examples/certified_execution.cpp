/**
 * @file
 * Certified execution (Section 4.1): Alice rents Bob's computer.
 *
 * Alice sends her program to the secure processor in Bob's machine.
 * The processor derives a key unique to (processor, program), runs
 * the program over integrity-verified memory, and signs the result.
 * Alice checks the signature against the published verification key.
 * If Bob tampers with the memory bus mid-run, the program's key is
 * destroyed and no valid certificate can exist.
 *
 *   $ ./certified_execution
 */

#include <cstdio>
#include <cstring>

#include "mem/backing_store.h"
#include "verify/adversary.h"
#include "verify/certified.h"

using namespace cmt;

namespace
{

/** Alice's program: a big dot product staged through memory. */
std::vector<std::uint8_t>
alicesProgram(MerkleMemory &memory)
{
    constexpr std::uint64_t kN = 4096;
    for (std::uint64_t i = 0; i < kN; ++i) {
        memory.store64(16 * i, i % 97);
        memory.store64(16 * i + 8, i % 89);
    }
    std::uint64_t dot = 0;
    for (std::uint64_t i = 0; i < kN; ++i)
        dot += memory.load64(16 * i) * memory.load64(16 * i + 8);

    std::vector<std::uint8_t> result(8);
    for (int b = 0; b < 8; ++b)
        result[b] = static_cast<std::uint8_t>(dot >> (8 * b));
    return result;
}

MerkleConfig
memoryConfig()
{
    MerkleConfig cfg;
    cfg.protectedSize = 1 << 20;
    cfg.cacheChunks = 128;
    return cfg;
}

} // namespace

int
main()
{
    // The manufacturer installs a secret in the processor and
    // publishes per-program verification keys.
    Key128 manufacturer_secret;
    manufacturer_secret.fill(0xA1);
    SecureProcessor processor(manufacturer_secret);

    const char *image_text = "alice-dot-product-v1.0";
    const std::vector<std::uint8_t> program_image(
        image_text, image_text + std::strlen(image_text));
    const Key128 verification_key =
        processor.verificationKeyFor(program_image);

    // --- Honest run -------------------------------------------------
    {
        BackingStore bobs_ram;
        const auto cert = processor.runCertified(
            program_image, alicesProgram, bobs_ram, memoryConfig());
        if (!cert) {
            std::printf("honest run produced no certificate?!\n");
            return 1;
        }
        std::uint64_t result = 0;
        for (int b = 7; b >= 0; --b)
            result = (result << 8) | cert->result[b];
        std::printf("honest run   : result=%llu signature %s\n",
                    static_cast<unsigned long long>(result),
                    SecureProcessor::verifyCertificate(verification_key,
                                                       *cert)
                        ? "VALID"
                        : "invalid");

        // Bob edits the result before sending it: signature breaks.
        Certificate forged = *cert;
        forged.result[0] ^= 1;
        std::printf("forged result: signature %s\n",
                    SecureProcessor::verifyCertificate(verification_key,
                                                       forged)
                        ? "VALID (bug!)"
                        : "rejected");
    }

    // --- Tampered run -----------------------------------------------
    {
        BackingStore bobs_ram;
        Adversary bob(bobs_ram);
        // Bob flips RAM between the program's writes and reads.
        auto tampered = [&](MerkleMemory &memory) {
            for (std::uint64_t i = 0; i < 4096; ++i) {
                memory.store64(16 * i, i % 97);
                memory.store64(16 * i + 8, i % 89);
            }
            memory.flush();
            memory.clearCache();
            bob.flipBit(memory.layout().dataToRam(16 * 1000), 0);
            std::uint64_t dot = 0;
            for (std::uint64_t i = 0; i < 4096; ++i)
                dot += memory.load64(16 * i) * memory.load64(16 * i + 8);
            return std::vector<std::uint8_t>(8, 0);
        };
        const auto cert = processor.runCertified(
            program_image, tampered, bobs_ram, memoryConfig());
        std::printf("tampered run : %s\n",
                    cert ? "certificate issued (bug!)"
                         : "no certificate - tampering destroyed the "
                           "program's key");
    }
    return 0;
}
