/**
 * @file
 * A miniature of the paper's evaluation: run one benchmark under all
 * four schemes and print the cost of integrity verification.
 *
 *   $ ./scheme_comparison [benchmark]
 */

#include <iostream>
#include <string>

#include "sim/system.h"
#include "support/table.h"

using namespace cmt;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "swim";

    SystemConfig cfg;
    cfg.benchmark = bench;
    cfg.warmupInstructions = 200'000;
    cfg.measureInstructions = 500'000;
    printConfigTable(std::cout, cfg);
    std::cout << "\nbenchmark: " << bench << "\n\n";

    Table t("memory integrity verification cost (" + bench + ")");
    t.header({"scheme", "IPC", "vs base", "L2 data miss",
              "extra reads/miss", "DRAM B/cyc"});

    double base_ipc = 0;
    for (const Scheme scheme : {Scheme::kBase, Scheme::kCached,
                                Scheme::kIncremental, Scheme::kNaive}) {
        cfg.l2.scheme = scheme;
        // The i scheme pairs two blocks per chunk (Figure 8).
        cfg.l2.chunkSize =
            scheme == Scheme::kIncremental ? 128 : cfg.l2.blockSize;
        std::cerr << "running " << schemeName(scheme) << "...\n";
        const SimResult r = simulate(cfg);
        if (scheme == Scheme::kBase)
            base_ipc = r.ipc;
        t.row({schemeName(scheme), Table::num(r.ipc),
               Table::pct(r.ipc / base_ipc - 1.0),
               Table::pct(r.l2DataMissRate),
               Table::num(r.extraReadsPerMiss, 2),
               Table::num(r.bandwidthBytesPerCycle, 2)});
    }
    t.print(std::cout);
    std::cout << "\nCaching the hash tree inside the L2 (cached / "
                 "incremental)\nrecovers nearly all of the naive "
                 "scheme's loss - the paper's\ncentral result.\n";
    return 0;
}
