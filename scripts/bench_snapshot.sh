#!/bin/sh
# Emit a dated micro-benchmark snapshot: run micro_tree and micro_sim
# (deterministic checksum rows plus host_seconds timing) and merge
# their sweeps into one BENCH_<date>.json at the repo root.
#
# Usage: scripts/bench_snapshot.sh [OUTFILE]
#
# The default OUTFILE is BENCH_$(date +%F).json. Snapshots are run
# with --no-memo so host_seconds reflects this machine, and at the
# full REPRO_SCALE unless the caller overrides it. Commit a snapshot
# alongside changes that move the micro rows so the history records
# both the behavioural checksums and the machine's throughput at the
# time.
set -e
cd "$(dirname "$0")/.."
outfile="${1:-BENCH_$(date +%F).json}"
builddir="${CMT_BUILD_DIR:-build}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bin in micro_tree micro_sim; do
    echo "== $bin =="
    "$builddir"/bench/"$bin" --jobs 2 --no-memo \
        --json "$tmpdir/$bin.json" > /dev/null
done

python3 - "$outfile" "$tmpdir/micro_tree.json" \
    "$tmpdir/micro_sim.json" <<'EOF'
import json
import sys

out, *parts = sys.argv[1:]
doc = {"snapshot": "micro", "runs": []}
for path in parts:
    with open(path) as fh:
        sweep = json.load(fh)
    doc.setdefault("repro_scale", sweep["repro_scale"])
    for run in sweep["runs"]:
        run["figure"] = sweep["figure"]
        doc["runs"].append(run)
with open(out, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"wrote {len(doc['runs'])} rows to {out}")
EOF
