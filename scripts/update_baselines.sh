#!/bin/sh
# Regenerate the committed regression baselines in results/baselines/.
# Usage: scripts/update_baselines.sh [OUTDIR]
#
# Baselines are small fixed-scale sweeps (REPRO_SCALE=0.02, a subset
# of benchmarks) so they run in seconds yet still exercise every
# scheme, the bandwidth path, and the SMP extension. The simulator is
# deterministic, so these JSON files are byte-stable across machines;
# cmt_regress compares fresh runs against them and fails the build on
# any drift.
#
# After an intentional behaviour change: re-run this script with no
# arguments, inspect `git diff results/baselines/`, and commit the
# update alongside the change that caused it.
#
# CI uses the OUTDIR argument to regenerate the same sweeps into a
# scratch directory and compare them against the committed ones; the
# sanitizer jobs point CMT_BUILD_DIR at their preset build tree.
set -e
cd "$(dirname "$0")/.."
outdir="${1:-results/baselines}"
builddir="${CMT_BUILD_DIR:-build}"
scale="0.02"
mkdir -p "$outdir"

run() {
    bin="$1"; shift
    echo "== $bin =="
    REPRO_SCALE="$scale" "$builddir"/bench/"$bin" --jobs 2 --no-memo \
        --json "$outdir/$bin.json" "$@" > /dev/null
}

run fig3_ipc_schemes --filter gcc
run fig5_bandwidth --filter swim
run fig8_chunk_schemes --filter swim
run ext_smp
run ext_shards

# cmt_loadgen needs a live daemon: bring one up on a scratch socket,
# drive the deterministic multi-client workload, and snapshot the
# per-client result rows. Checksums are interleaving-independent, so
# the rows are stable across machines; cmt_regress ignores the timing
# fields.
echo "== cmt_loadgen =="
sock="$(mktemp -u /tmp/cmt_baseline_XXXXXX).sock"
"$builddir"/tools/cmt_served --socket "$sock" 2> /dev/null &
served_pid=$!
REPRO_SCALE="$scale" "$builddir"/tools/cmt_loadgen --socket "$sock" \
    --json "$outdir/cmt_loadgen.json" 2> /dev/null
kill -TERM "$served_pid"
wait "$served_pid"

echo "baselines written to $outdir (REPRO_SCALE=$scale)"
