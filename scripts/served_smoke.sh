#!/bin/sh
# End-to-end smoke test for the verification daemon.
#
# Starts cmt_served on a scratch socket, drives it with the
# multi-client cmt_loadgen workload, replays the identical traces
# serially, and feeds both JSON reports to cmt_regress: the daemon's
# concurrent execution must be byte-identical to the serial one
# (timing fields are ignored; checksums and op counts are not). Then
# SIGTERM shuts the daemon down gracefully - which must persist every
# store through the crash-safe save path - and a --load restart must
# serve the snapshot cleanly.
#
# Usage: scripts/served_smoke.sh [BUILD_DIR [SCRATCH_DIR]]
# BUILD_DIR defaults to $CMT_BUILD_DIR, then ./build. The scratch
# directory (sockets, state, JSON) is removed on success when the
# script created it itself.
set -e
cd "$(dirname "$0")/.."
builddir="${1:-${CMT_BUILD_DIR:-build}}"
if [ -n "$2" ]; then
    scratch="$2"
    made_scratch=0
else
    scratch="$(mktemp -d)"
    made_scratch=1
fi
state="$scratch/state"
sock="$scratch/served.sock"
scale="${REPRO_SCALE:-0.05}"
mkdir -p "$state"

echo "== daemon up =="
"$builddir"/tools/cmt_served --socket "$sock" --state-dir "$state" &
pid=$!
trap 'kill -TERM "$pid" 2> /dev/null || true' EXIT

echo "== parallel load (8 clients) =="
REPRO_SCALE="$scale" "$builddir"/tools/cmt_loadgen --socket "$sock" \
    --json "$scratch/parallel.json"

echo "== serial replay of the same traces =="
REPRO_SCALE="$scale" "$builddir"/tools/cmt_loadgen --socket "$sock" \
    --serial --json "$scratch/serial.json"

echo "== parallel run must match serial run =="
"$builddir"/tools/cmt_regress "$scratch/parallel.json" \
    "$scratch/serial.json"

echo "== graceful shutdown persists the store =="
kill -TERM "$pid"
wait "$pid"
trap - EXIT
test -f "$state/store0.image"
test -f "$state/store0.roots"

echo "== --load restart serves the snapshot =="
"$builddir"/tools/cmt_served --socket "$sock" --state-dir "$state" \
    --load &
pid=$!
trap 'kill -TERM "$pid" 2> /dev/null || true' EXIT
REPRO_SCALE="$scale" "$builddir"/tools/cmt_loadgen --socket "$sock" \
    --clients 4 --json "$scratch/reload.json"
kill -TERM "$pid"
wait "$pid"
trap - EXIT

if [ "$made_scratch" = 1 ]; then
    rm -rf "$scratch"
fi
echo "served_smoke: PASS"
