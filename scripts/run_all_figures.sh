#!/bin/sh
# Regenerate every figure/table/ablation into results/.
# Usage: scripts/run_all_figures.sh [REPRO_SCALE]
set -e
cd "$(dirname "$0")/.."
scale="${1:-1}"
mkdir -p results
for b in fig3_ipc_schemes fig4_cache_contention fig5_bandwidth \
         fig6_hash_throughput fig7_buffer_size fig8_chunk_schemes \
         tab_logic_overhead abl_speculation abl_writealloc abl_arity \
         ext_privacy ext_smp; do
    echo "== $b (REPRO_SCALE=$scale) =="
    REPRO_SCALE="$scale" ./build/bench/"$b" \
        > "results/$b.txt" 2> "results/$b.log"
done
echo "done; see results/*.txt"
