#!/bin/sh
# Regenerate every figure/table/ablation into results/.
# Usage: scripts/run_all_figures.sh [REPRO_SCALE] [JOBS]
#
# Each harness runs its sweep on JOBS worker threads (default: all
# cores) and writes both the paper-style text table (results/<b>.txt)
# and the machine-readable sweep (results/<b>.json).
set -e
cd "$(dirname "$0")/.."
scale="${1:-1}"
jobs="${2:-0}"
mkdir -p results
for b in fig3_ipc_schemes fig4_cache_contention fig5_bandwidth \
         fig6_hash_throughput fig7_buffer_size fig8_chunk_schemes \
         tab_logic_overhead abl_speculation abl_writealloc abl_arity \
         ext_privacy ext_smp ext_shards; do
    echo "== $b (REPRO_SCALE=$scale, jobs=$jobs) =="
    REPRO_SCALE="$scale" ./build/bench/"$b" \
        --jobs "$jobs" --json "results/$b.json" \
        > "results/$b.txt" 2> "results/$b.log"
done
echo "done; see results/*.txt and results/*.json"
